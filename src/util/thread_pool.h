// Persistent task-queue thread pool with chunked index-range jobs.
//
// The pool owns `threads - 1` worker threads; the submitting thread always
// participates in `wait`, so `ThreadPool(1)` spawns no workers and
// degenerates to a plain serial loop — the natural single-threaded
// fallback.  Work is handed out as fixed-size chunks of an index range.
//
// Two layers of API:
//
//   // One-shot (the historical interface, now a shim over submit/wait):
//   pool.parallel_for(0, rows, [&](std::int64_t lo, std::int64_t hi) {
//     for (std::int64_t r = lo; r < hi; ++r) process(r);
//   });
//
//   // Persistent-queue mode: enqueue a job, help run it, collect stats.
//   auto job = pool.submit(0, rows, body, /*grain=*/1, /*max_threads=*/4);
//   pool.wait(job);  // caller runs chunks too; rethrows the first error
//
// Scheduling: workers pull chunks from queued jobs through an atomic
// claim counter, so an idle worker steals whatever chunks remain — there
// is no per-job wake/park barrier.  A job COMPLETES when every chunk has
// run (chunks-done counting), never when workers park: a late-waking or
// busy worker that never claims a chunk cannot stall a tiny job.
// `max_threads` caps how many threads participate in one job (the
// submitter always counts as one), which is how SweepRunner honours
// `--jobs k` on the process-shared pool.
//
// Determinism contract: chunk boundaries depend only on (begin, end, grain)
// — never on the thread count or on scheduling — so any computation whose
// chunks write disjoint state produces bit-identical results at every
// thread count.  Callers that accumulate across chunks must combine the
// per-chunk results in index order themselves.
//
// Exceptions thrown by the body are caught, the remaining chunks are
// cancelled, and the first exception (by completion order) is rethrown on
// the waiting thread.
//
// Nested submissions (a body that itself calls parallel_for / submit on
// the same pool) are safe: the nested waiter drains its own job's chunks,
// and idle workers may help, so nesting can never deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace shuffledef::util {

class ThreadPool {
 public:
  /// One enqueued chunked job.  Opaque except for post-completion stats.
  class Job {
   public:
    /// Chunks executed by the submitting/waiting thread vs. stolen by pool
    /// workers.  Scheduling-dependent (NOT deterministic); read only after
    /// `wait` returned.
    [[nodiscard]] std::int64_t chunks_by_submitter() const noexcept {
      return by_submitter_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t chunks_stolen() const noexcept {
      return stolen_.load(std::memory_order_relaxed);
    }

   private:
    friend class ThreadPool;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    std::int64_t chunk_count = 0;
    std::size_t max_threads = 0;  // 0 = unlimited
    std::function<void(std::int64_t, std::int64_t)> body;
    std::atomic<std::int64_t> next_chunk{0};   // claim counter (CAS, no overshoot)
    std::atomic<std::int64_t> chunks_done{0};  // executed + cancelled chunks
    std::atomic<std::int64_t> by_submitter_{0};
    std::atomic<std::int64_t> stolen_{0};
    std::atomic<std::size_t> participants{1};  // submitter holds a slot
    bool done = false;                         // guarded by the pool mutex
    std::exception_ptr error;                  // guarded by the pool mutex
  };
  using JobHandle = std::shared_ptr<Job>;

  /// `threads` counts the calling thread: the pool spawns `threads - 1`
  /// workers.  0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a job (workers + caller).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Process-wide pool sized to the hardware, created on first use.
  static ThreadPool& shared();

  /// Enqueue `body(lo, hi)` over [begin, end) split into chunks of `grain`
  /// indices (the last chunk may be short) and return immediately.  At most
  /// `max_threads` threads (0 = no cap; the submitter counts as one) run
  /// this job's chunks concurrently.
  JobHandle submit(std::int64_t begin, std::int64_t end,
                   std::function<void(std::int64_t, std::int64_t)> body,
                   std::int64_t grain = 1, std::size_t max_threads = 0);

  /// Help run the job's remaining chunks, then block until every chunk has
  /// completed (chunks-done, not workers-parked).  Rethrows the first
  /// exception any chunk raised.
  void wait(const JobHandle& job);

  /// submit + wait, with a serial fast path when the pool has no workers
  /// or the range is a single chunk.  Blocks until every chunk has run.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& body,
                    std::int64_t grain = 1);

 private:
  void worker_loop();
  /// Claim and run chunks until none remain; counts executed chunks into
  /// the stolen/submitter stat selected by `as_worker`.
  void run_chunks(Job& job, bool as_worker);
  /// With the pool mutex held: first queued job with unclaimed chunks and a
  /// free participant slot (claims the slot), or nullptr.
  JobHandle pick_runnable_locked();
  /// With the pool mutex held: drop fully-claimed jobs from the queue and
  /// mark `job` done (+ notify waiters) once every chunk completed.
  void retire_locked(const JobHandle& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: queue version changed
  std::condition_variable done_cv_;  // waiters: some job completed
  std::deque<JobHandle> queue_;      // guarded by mutex_
  std::uint64_t queue_version_ = 0;  // bumped per submit
  bool stop_ = false;
};

}  // namespace shuffledef::util

// Small reusable chunked thread pool.
//
// The pool owns `threads - 1` worker threads; the calling thread always
// participates in `parallel_for`, so `ThreadPool(1)` spawns no workers and
// degenerates to a plain serial loop — the natural single-threaded
// fallback.  Work is handed out as fixed-size chunks of an index range:
//
//   pool.parallel_for(0, rows, [&](std::int64_t lo, std::int64_t hi) {
//     for (std::int64_t r = lo; r < hi; ++r) process(r);
//   });
//
// Determinism contract: chunk boundaries depend only on (begin, end, grain)
// — never on the thread count or on scheduling — so any computation whose
// chunks write disjoint state produces bit-identical results at every
// thread count.  Callers that accumulate across chunks must combine the
// per-chunk results in index order themselves.
//
// Exceptions thrown by the body are caught, the remaining chunks are
// cancelled, and the first exception (by completion order) is rethrown on
// the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shuffledef::util {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: the pool spawns `threads - 1`
  /// workers.  0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a parallel_for (workers + caller).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Process-wide pool sized to the hardware, created on first use.
  static ThreadPool& shared();

  /// Invoke `body(lo, hi)` over [begin, end) split into chunks of `grain`
  /// indices (the last chunk may be short).  Blocks until every chunk has
  /// run.  Nested parallel_for calls from inside `body` run serially.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& body,
                    std::int64_t grain = 1);

 private:
  struct Job {
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t chunk_count = 0;
    std::int64_t end = 0;
    const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
    std::atomic<std::int64_t> next_chunk{0};
    std::size_t workers_finished = 0;  // guarded by the pool mutex
    std::exception_ptr error;          // guarded by the pool mutex
  };

  void worker_loop();
  void run_chunks(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for workers_finished
  Job* job_ = nullptr;                // guarded by mutex_
  std::uint64_t generation_ = 0;      // bumped per parallel_for
  bool stop_ = false;
};

}  // namespace shuffledef::util

#include "util/math.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace shuffledef::util {
namespace {

constexpr std::int64_t kLogFactCacheSize = 1 << 20;  // exact up to ~1M

// Process-wide cache (magic static): built once — possibly under the
// static-init mutex on first use — then read lock-free forever after.
const double* log_fact_table() {
  static const std::vector<double> table = [] {
    std::vector<double> t(kLogFactCacheSize);
    t[0] = 0.0;
    for (std::int64_t i = 1; i < kLogFactCacheSize; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table.data();
}

// Table-pointer-in-hand variants: the binomial/pmf hot paths fetch the
// magic static once per call instead of once per factorial (each fetch is
// a guarded acquire load).
inline double log_factorial_from(const double* table, std::int64_t n) {
  if (n < kLogFactCacheSize) return table[n];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

inline double log_binomial_from(const double* table, std::int64_t n,
                                std::int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return log_factorial_from(table, n) - log_factorial_from(table, k) -
         log_factorial_from(table, n - k);
}

std::atomic<bool> math_tables_warm_flag{false};

}  // namespace

void warm_math_tables() {
  (void)log_fact_table();
  math_tables_warm_flag.store(true, std::memory_order_release);
}

bool math_tables_warm() noexcept {
  return math_tables_warm_flag.load(std::memory_order_acquire);
}

double log_factorial(std::int64_t n) {
  if (n < 0) throw std::invalid_argument("log_factorial: negative argument");
  return log_factorial_from(log_fact_table(), n);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  return log_binomial_from(log_fact_table(), n, k);
}

double binomial(std::int64_t n, std::int64_t k) {
  const double lb = log_binomial(n, k);
  if (lb == kNegInf) return 0.0;
  return std::exp(lb);
}

double prob_no_bots(std::int64_t n, std::int64_t m, std::int64_t x) {
  if (n < 0 || m < 0 || x < 0 || m > n || x > n) {
    throw std::invalid_argument("prob_no_bots: invalid arguments");
  }
  if (m == 0) return 1.0;
  if (x == 0) return 1.0;
  if (x > n - m) return 0.0;  // not enough non-bot clients to fill the replica
  const double* table = log_fact_table();
  return std::exp(log_binomial_from(table, n - x, m) -
                  log_binomial_from(table, n, m));
}

double log_hypergeometric_pmf(std::int64_t total, std::int64_t successes,
                              std::int64_t draws, std::int64_t k) {
  if (total < 0 || successes < 0 || draws < 0 || successes > total ||
      draws > total) {
    throw std::invalid_argument("hypergeometric: invalid parameters");
  }
  if (k < 0 || k > draws || k > successes || draws - k > total - successes) {
    return kNegInf;
  }
  const double* table = log_fact_table();
  return log_binomial_from(table, successes, k) +
         log_binomial_from(table, total - successes, draws - k) -
         log_binomial_from(table, total, draws);
}

double hypergeometric_pmf(std::int64_t total, std::int64_t successes,
                          std::int64_t draws, std::int64_t k) {
  const double lp = log_hypergeometric_pmf(total, successes, draws, k);
  if (lp == kNegInf) return 0.0;
  return std::exp(lp);
}

double hypergeometric_mean(std::int64_t total, std::int64_t successes,
                           std::int64_t draws) {
  if (total == 0) return 0.0;
  return static_cast<double>(draws) * static_cast<double>(successes) /
         static_cast<double>(total);
}

double hypergeometric_var(std::int64_t total, std::int64_t successes,
                          std::int64_t draws) {
  if (total <= 1) return 0.0;
  const double t = static_cast<double>(total);
  const double s = static_cast<double>(successes);
  const double d = static_cast<double>(draws);
  return d * (s / t) * (1.0 - s / t) * ((t - d) / (t - 1.0));
}

HypergeomSupport hypergeometric_support(std::int64_t total,
                                        std::int64_t successes,
                                        std::int64_t draws) {
  HypergeomSupport s;
  s.lo = std::max<std::int64_t>(0, draws - (total - successes));
  s.hi = std::min(draws, successes);
  return s;
}

double log_sum_exp(std::span<const double> xs) {
  double mx = kNegInf;
  for (double x : xs) mx = std::max(mx, x);
  if (mx == kNegInf) return kNegInf;
  KahanSum sum;
  for (double x : xs) sum.add(std::exp(x - mx));
  return mx + std::log(sum.value());
}

double log_add_exp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double mx = std::max(a, b);
  return mx + std::log1p(std::exp(std::min(a, b) - mx));
}

}  // namespace shuffledef::util

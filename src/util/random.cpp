#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.h"

namespace shuffledef::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  // Seed the Mersenne twister with a full state derived from splitmix64,
  // avoiding the classic low-entropy single-word seeding problem.
  std::seed_seq seq{splitmix64(s), splitmix64(s), splitmix64(s), splitmix64(s),
                    splitmix64(s), splitmix64(s), splitmix64(s), splitmix64(s)};
  engine_.seed(seq);
}

Rng Rng::fork(std::uint64_t salt) const {
  std::uint64_t s = seed_ ^ (0xA5A5A5A5DEADBEEFULL + salt * 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(s));
}

SmallRng Rng::fork_small(std::uint64_t salt) const {
  // Same derivation as fork(), with an extra constant so fork(salt) and
  // fork_small(salt) are distinct streams.
  std::uint64_t s = seed_ ^ (0xC3C3C3C3CAFEF00DULL + salt * 0x9E3779B97F4A7C15ULL);
  return SmallRng(splitmix64(s));
}

std::uint64_t Rng::next_u64() { return engine_(); }

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: negative mean");
  if (mean == 0.0) return 0;
  std::poisson_distribution<std::int64_t> dist(mean);
  return dist(engine_);
}

std::int64_t Rng::binomial(std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial: negative n");
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  std::binomial_distribution<std::int64_t> dist(n, p);
  return dist(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate <= 0");
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::hypergeometric(std::int64_t total, std::int64_t successes,
                                 std::int64_t draws) {
  if (total < 0 || successes < 0 || draws < 0 || successes > total ||
      draws > total) {
    throw std::invalid_argument("hypergeometric: invalid parameters");
  }
  const auto support = hypergeometric_support(total, successes, draws);
  if (support.lo == support.hi) return support.lo;

  // Inverse transform anchored at the mode: walk outwards accumulating pmf
  // mass until the uniform variate is covered.  The pmf around the mode is
  // computed incrementally via the ratio
  //   pmf(k+1)/pmf(k) = (successes-k)(draws-k) / ((k+1)(total-successes-draws+k+1)).
  const auto mode = static_cast<std::int64_t>(
      std::floor((static_cast<double>(draws) + 1.0) *
                 (static_cast<double>(successes) + 1.0) /
                 (static_cast<double>(total) + 2.0)));
  const std::int64_t anchor = std::clamp(mode, support.lo, support.hi);

  const double u = uniform();
  const double p_anchor = hypergeometric_pmf(total, successes, draws, anchor);

  double cum = p_anchor;
  if (u < cum) return anchor;

  double p_up = p_anchor;
  double p_down = p_anchor;
  std::int64_t up = anchor;
  std::int64_t down = anchor;
  const double s = static_cast<double>(successes);
  const double d = static_cast<double>(draws);
  const double t = static_cast<double>(total);

  while (up < support.hi || down > support.lo) {
    if (up < support.hi) {
      const double k = static_cast<double>(up);
      p_up *= (s - k) * (d - k) / ((k + 1.0) * (t - s - d + k + 1.0));
      ++up;
      cum += p_up;
      if (u < cum) return up;
    }
    if (down > support.lo) {
      const double k = static_cast<double>(down);
      p_down *= k * (t - s - d + k) / ((s - k + 1.0) * (d - k + 1.0));
      --down;
      cum += p_down;
      if (u < cum) return down;
    }
  }
  // Floating-point shortfall (cum ~ 1 - epsilon < u): return the boundary
  // with larger remaining mass; both are in-support so the result is valid.
  return p_up >= p_down ? up : down;
}

std::vector<std::int64_t> Rng::multivariate_hypergeometric(
    std::span<const std::int64_t> bucket_sizes, std::int64_t successes) {
  std::int64_t total = 0;
  for (const auto sz : bucket_sizes) {
    if (sz < 0) {
      throw std::invalid_argument("multivariate_hypergeometric: negative size");
    }
    total += sz;
  }
  if (successes < 0 || successes > total) {
    throw std::invalid_argument(
        "multivariate_hypergeometric: successes out of range");
  }
  std::vector<std::int64_t> out(bucket_sizes.size(), 0);
  std::int64_t remaining_total = total;
  std::int64_t remaining_successes = successes;
  for (std::size_t i = 0; i < bucket_sizes.size(); ++i) {
    if (remaining_successes == 0) break;
    const std::int64_t sz = bucket_sizes[i];
    if (i + 1 == bucket_sizes.size()) {
      out[i] = remaining_successes;  // everything left lands in the last bucket
      remaining_successes = 0;
      break;
    }
    const std::int64_t b =
        hypergeometric(remaining_total, remaining_successes, sz);
    out[i] = b;
    remaining_total -= sz;
    remaining_successes -= b;
  }
  return out;
}

}  // namespace shuffledef::util

#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace shuffledef::util {
namespace {

/// Claim one chunk index without overshooting chunk_count (CAS rather than
/// fetch_add so cancellation can account for skipped chunks exactly).
std::int64_t claim_chunk(std::atomic<std::int64_t>& next,
                         std::int64_t chunk_count) {
  std::int64_t cur = next.load(std::memory_order_relaxed);
  while (cur < chunk_count) {
    if (next.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
      return cur;
    }
  }
  return -1;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_chunks(Job& job, bool as_worker) {
  auto& executed = as_worker ? job.stolen_ : job.by_submitter_;
  for (;;) {
    const std::int64_t i = claim_chunk(job.next_chunk, job.chunk_count);
    if (i < 0) return;
    const std::int64_t lo = job.begin + i * job.grain;
    const std::int64_t hi = std::min(job.end, lo + job.grain);
    try {
      job.body(lo, hi);
      executed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
      // Cancel the unclaimed chunks and fold them into chunks_done so the
      // completion condition (chunks_done == chunk_count) still fires.
      std::int64_t cur = job.next_chunk.load(std::memory_order_relaxed);
      while (cur < job.chunk_count) {
        if (job.next_chunk.compare_exchange_weak(cur, job.chunk_count,
                                                 std::memory_order_relaxed)) {
          job.chunks_done.fetch_add(job.chunk_count - cur,
                                    std::memory_order_acq_rel);
          break;
        }
      }
    }
    // Release so the thread that observes the final count (acquire) sees
    // every result this chunk produced before it marks the job done.
    job.chunks_done.fetch_add(1, std::memory_order_acq_rel);
  }
}

ThreadPool::JobHandle ThreadPool::pick_runnable_locked() {
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& job = **it;
    if (job.next_chunk.load(std::memory_order_relaxed) >= job.chunk_count) {
      it = queue_.erase(it);  // fully claimed: nothing left to hand out
      continue;
    }
    if (job.max_threads != 0) {
      std::size_t cur = job.participants.load(std::memory_order_relaxed);
      if (cur >= job.max_threads) {
        ++it;
        continue;
      }
      job.participants.fetch_add(1, std::memory_order_relaxed);
    }
    return *it;
  }
  return nullptr;
}

void ThreadPool::retire_locked(const JobHandle& job) {
  const auto it = std::find(queue_.begin(), queue_.end(), job);
  if (it != queue_.end() &&
      job->next_chunk.load(std::memory_order_relaxed) >= job->chunk_count) {
    queue_.erase(it);
  }
  if (!job->done && job->chunks_done.load(std::memory_order_acquire) ==
                        job->chunk_count) {
    job->done = true;
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_version = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stop_) return;
    JobHandle job = pick_runnable_locked();
    if (!job) {
      work_cv_.wait(lock, [&] {
        return stop_ || queue_version_ != seen_version;
      });
      seen_version = queue_version_;
      continue;
    }
    lock.unlock();
    run_chunks(*job, /*as_worker=*/true);
    lock.lock();
    retire_locked(job);
  }
}

ThreadPool::JobHandle ThreadPool::submit(
    std::int64_t begin, std::int64_t end,
    std::function<void(std::int64_t, std::int64_t)> body, std::int64_t grain,
    std::size_t max_threads) {
  grain = std::max<std::int64_t>(grain, 1);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = std::max(begin, end);
  job->grain = grain;
  job->chunk_count = (job->end - begin + grain - 1) / grain;
  job->max_threads = max_threads;
  job->body = std::move(body);
  if (job->chunk_count == 0) {
    job->done = true;  // empty range: already complete, never queued
    return job;
  }
  std::size_t to_wake = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(job);
    ++queue_version_;
    // Wake only as many workers as could usefully claim a chunk; the job
    // completes on chunks-done, so un-woken workers are never waited on.
    to_wake = workers_.size();
    to_wake = std::min<std::size_t>(
        to_wake, static_cast<std::size_t>(job->chunk_count));
    if (max_threads != 0) to_wake = std::min(to_wake, max_threads - 1);
  }
  for (std::size_t i = 0; i < to_wake; ++i) work_cv_.notify_one();
  return job;
}

void ThreadPool::wait(const JobHandle& job) {
  run_chunks(*job, /*as_worker=*/false);
  std::unique_lock<std::mutex> lock(mutex_);
  retire_locked(job);
  done_cv_.wait(lock, [&] {
    if (!job->done && job->chunks_done.load(std::memory_order_acquire) ==
                          job->chunk_count) {
      job->done = true;  // the waiter itself may observe completion first
    }
    return job->done;
  });
  const std::exception_ptr error = job->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunk_count = (end - begin + grain - 1) / grain;
  if (workers_.empty() || chunk_count == 1) {
    for (std::int64_t i = 0; i < chunk_count; ++i) {
      const std::int64_t lo = begin + i * grain;
      body(lo, std::min(end, lo + grain));
    }
    return;
  }
  wait(submit(begin, end, body, grain));
}

}  // namespace shuffledef::util

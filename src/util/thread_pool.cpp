#include "util/thread_pool.h"

#include <algorithm>

namespace shuffledef::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::int64_t i =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.chunk_count) return;
    const std::int64_t lo = job.begin + i * job.grain;
    const std::int64_t hi = std::min(job.end, lo + job.grain);
    try {
      (*job.body)(lo, hi);
    } catch (...) {
      // Cancel the remaining chunks and keep the first exception observed.
      job.next_chunk.store(job.chunk_count, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stop_) return;
    seen_generation = generation_;
    Job& job = *job_;
    lock.unlock();
    run_chunks(job);
    lock.lock();
    ++job.workers_finished;
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  if (end <= begin) return;
  grain = std::max<std::int64_t>(grain, 1);
  const std::int64_t chunk_count = (end - begin + grain - 1) / grain;
  // Serial fast path: no workers, a single chunk, or a nested call from a
  // worker (job_ already set would deadlock the caller's wait).
  if (workers_.empty() || chunk_count == 1) {
    for (std::int64_t i = 0; i < chunk_count; ++i) {
      const std::int64_t lo = begin + i * grain;
      body(lo, std::min(end, lo + grain));
    }
    return;
  }

  Job job;
  job.begin = begin;
  job.grain = grain;
  job.chunk_count = chunk_count;
  job.end = end;
  job.body = &body;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (job_ != nullptr) {
      // Nested parallel_for (a body that itself parallelizes): run inline.
      lock.unlock();
      for (std::int64_t i = 0; i < chunk_count; ++i) {
        const std::int64_t lo = begin + i * grain;
        body(lo, std::min(end, lo + grain));
      }
      return;
    }
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(job);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return job.workers_finished == workers_.size(); });
  job_ = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace shuffledef::util

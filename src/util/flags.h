// Minimal command-line flag parser for the bench and example binaries.
//
//   util::Flags flags("fig08", "Reproduces Figure 8");
//   auto& reps = flags.add_int("reps", 30, "repetitions per data point");
//   auto& full = flags.add_bool("full", false, "paper-scale parameters");
//   flags.parse(argc, argv);        // exits(0) on --help, throws on errors
//
// Accepted syntaxes: --name value, --name=value, and bare --name for bools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace shuffledef::util {

class Flags {
 public:
  Flags(std::string program, std::string description);

  std::int64_t& add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help);
  double& add_double(const std::string& name, double default_value,
                     const std::string& help);
  bool& add_bool(const std::string& name, bool default_value,
                 const std::string& help);
  std::string& add_string(const std::string& name, std::string default_value,
                          const std::string& help);

  /// Parse argv.  Prints usage and exits(0) if --help is present; throws
  /// std::invalid_argument on unknown flags or malformed values.
  void parse(int argc, char** argv);

  [[nodiscard]] std::string usage() const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    std::string help;
    Type type;
    std::unique_ptr<std::int64_t> int_value;
    std::unique_ptr<double> double_value;
    std::unique_ptr<bool> bool_value;
    std::unique_ptr<std::string> string_value;
    std::string default_repr;
  };

  Flag* find(const std::string& name);
  void assign(Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Flag>> flags_;
};

}  // namespace shuffledef::util

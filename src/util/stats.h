// Streaming statistics and confidence intervals.
//
// The paper reports every simulated data point as a mean over repeated runs
// surrounded by a 99% (Fig. 7, 8, 9, 10) or 95% (Fig. 12) confidence
// interval.  `Accumulator` computes the running mean/variance (Welford) and
// `Summary` produces Student-t confidence half-widths for exactly that.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace shuffledef::util {

struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;

  /// Half-width of the two-sided confidence interval at the given level
  /// (e.g. 0.95 or 0.99) using the Student-t distribution.
  [[nodiscard]] double ci_half_width(double level) const;

  /// "12.3 ± 0.4" style rendering.
  [[nodiscard]] std::string to_string(double level = 0.95) const;
};

class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::int64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;   // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] Summary summary() const;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for `df` degrees of freedom at the
/// given confidence level (0 < level < 1).  Exact for the tabulated grid the
/// benches use; log-interpolated in between; normal quantile for df > 200.
double student_t_critical(std::int64_t df, double level);

/// Quantile of a sample (q in [0,1], linear interpolation, copies the data).
double percentile(std::span<const double> xs, double q);

/// Summarize a whole sample at once.
Summary summarize(std::span<const double> xs);

}  // namespace shuffledef::util

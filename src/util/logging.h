// Leveled logging with a global threshold.
//
//   SDEF_LOG(Info) << "shuffle " << round << " saved " << saved;
//
// The stream is only materialized when the level passes the threshold, so
// disabled log statements cost one branch.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace shuffledef::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

const char* log_level_name(LogLevel level) noexcept;

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace shuffledef::util

#define SDEF_LOG(severity)                                                  \
  if (::shuffledef::util::LogLevel::k##severity <                           \
      ::shuffledef::util::log_threshold()) {                                \
  } else                                                                    \
    ::shuffledef::util::LogMessage(::shuffledef::util::LogLevel::k##severity, \
                                   __FILE__, __LINE__)

#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace shuffledef::util {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << log_level_name(level) << " " << basename_of(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  auto& os = level_ >= LogLevel::kWarn ? std::cerr : std::clog;
  os << stream_.str();
}

}  // namespace shuffledef::util

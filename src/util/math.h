// Log-space combinatorics kernel.
//
// Every planner and estimator in this library evaluates expressions of the
// form C(N - x, M) / C(N, M) for N up to a few hundred thousand.  Direct
// binomials overflow instantly, so all combinatorics are done in log space
// with a cached log-factorial table.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace shuffledef::util {

/// Eagerly build the process-wide log-factorial table that backs
/// log_factorial / log_binomial / hypergeometric_pmf (otherwise it is built
/// lazily on first use).  Call once before fanning work across threads so
/// concurrent first users don't serialize on the one-time ~1M-entry
/// initialization.  Thread-safe and idempotent.
void warm_math_tables();

/// True once warm_math_tables() has completed — lets benches assert that
/// one-time table initialization happened before, not inside, a timed
/// region (lazy first-use builds do NOT set this).
bool math_tables_warm() noexcept;

/// Natural log of n! (n >= 0).  Values up to an internal cache size are
/// exact table lookups; larger arguments fall back to lgamma.
double log_factorial(std::int64_t n);

/// Natural log of the binomial coefficient C(n, k).
/// Returns -infinity when the coefficient is zero (k < 0 or k > n).
double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) as a double; +infinity if it overflows.  Exact for small values.
double binomial(std::int64_t n, std::int64_t k);

/// The workhorse ratio C(n - x, m) / C(n, m): the probability that a replica
/// holding x of n clients receives none of the m bots under uniformly random
/// placement.  Requires 0 <= x <= n, 0 <= m <= n.  Returns 0 when every
/// placement necessarily puts a bot on the replica (x > n - m).
double prob_no_bots(std::int64_t n, std::int64_t m, std::int64_t x);

/// Hypergeometric pmf: drawing `draws` items from a population of `total`
/// containing `successes` marked items, probability of exactly `k` marked.
double hypergeometric_pmf(std::int64_t total, std::int64_t successes,
                          std::int64_t draws, std::int64_t k);

/// log of hypergeometric pmf (-infinity where the pmf is zero).
double log_hypergeometric_pmf(std::int64_t total, std::int64_t successes,
                              std::int64_t draws, std::int64_t k);

/// Mean of the hypergeometric distribution.
double hypergeometric_mean(std::int64_t total, std::int64_t successes,
                           std::int64_t draws);

/// Variance of the hypergeometric distribution.
double hypergeometric_var(std::int64_t total, std::int64_t successes,
                          std::int64_t draws);

/// Support bounds [lo, hi] of the hypergeometric distribution.
struct HypergeomSupport {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
HypergeomSupport hypergeometric_support(std::int64_t total,
                                        std::int64_t successes,
                                        std::int64_t draws);

/// Numerically stable log(sum(exp(x_i))).  Empty input yields -infinity.
double log_sum_exp(std::span<const double> xs);

/// log(exp(a) + exp(b)) without leaving log space.
double log_add_exp(double a, double b);

/// Kahan-compensated running sum; used wherever long alternating or
/// many-term probability sums are accumulated.
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace shuffledef::util

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace shuffledef::util {
namespace {

struct TRow {
  std::int64_t df;
  double t90, t95, t99;
};

// Two-sided critical values of the Student-t distribution.
constexpr TRow kTTable[] = {
    {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
    {12, 1.782, 2.179, 3.055},  {14, 1.761, 2.145, 2.977},
    {16, 1.746, 2.120, 2.921},  {18, 1.734, 2.101, 2.878},
    {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
    {29, 1.699, 2.045, 2.756},  {30, 1.697, 2.042, 2.750},
    {39, 1.685, 2.023, 2.708},  {40, 1.684, 2.021, 2.704},
    {50, 1.676, 2.009, 2.678},  {60, 1.671, 2.000, 2.660},
    {80, 1.664, 1.990, 2.639},  {100, 1.660, 1.984, 2.626},
    {150, 1.655, 1.976, 2.609}, {200, 1.653, 1.972, 2.601},
};

double t_at_level(const TRow& row, double level) {
  if (level <= 0.90) return row.t90;
  if (level <= 0.95) {
    // Linear interpolation between 90% and 95%.
    const double f = (level - 0.90) / 0.05;
    return row.t90 + f * (row.t95 - row.t90);
  }
  if (level <= 0.99) {
    const double f = (level - 0.95) / 0.04;
    return row.t95 + f * (row.t99 - row.t95);
  }
  return row.t99;
}

double normal_quantile_two_sided(double level) {
  // Acklam-style rational approximation of the standard normal quantile at
  // p = (1 + level) / 2; plenty accurate for CI reporting.
  const double p = 0.5 * (1.0 + level);
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("bad level");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double student_t_critical(std::int64_t df, double level) {
  if (df < 1) throw std::invalid_argument("student_t_critical: df < 1");
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("student_t_critical: level out of (0,1)");
  }
  constexpr std::size_t n = sizeof(kTTable) / sizeof(kTTable[0]);
  if (df > kTTable[n - 1].df) return normal_quantile_two_sided(level);
  // Find bracketing rows and interpolate in 1/df (standard practice).
  std::size_t hi = 0;
  while (hi < n && kTTable[hi].df < df) ++hi;
  if (hi < n && kTTable[hi].df == df) return t_at_level(kTTable[hi], level);
  const TRow& lo_row = kTTable[hi - 1];
  const TRow& hi_row = kTTable[hi];
  const double x = 1.0 / static_cast<double>(df);
  const double x0 = 1.0 / static_cast<double>(lo_row.df);
  const double x1 = 1.0 / static_cast<double>(hi_row.df);
  const double f = (x - x0) / (x1 - x0);
  return t_at_level(lo_row, level) +
         f * (t_at_level(hi_row, level) - t_at_level(lo_row, level));
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Summary Accumulator::summary() const {
  Summary s;
  s.count = n_;
  s.mean = mean_;
  s.stddev = stddev();
  s.min = min_;
  s.max = max_;
  return s;
}

double Summary::ci_half_width(double level) const {
  if (count < 2) return 0.0;
  const double t = student_t_critical(count - 1, level);
  return t * stddev / std::sqrt(static_cast<double>(count));
}

std::string Summary::to_string(double level) const {
  std::ostringstream os;
  os.precision(4);
  os << mean << " ± " << ci_half_width(level);
  return os.str();
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile: bad q");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(idx);
  return v[idx] + frac * (v[idx + 1] - v[idx]);
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.summary();
}

}  // namespace shuffledef::util

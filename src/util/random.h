// Deterministic random-number generation for simulations.
//
// Every experiment in this library is reproducible: an `Rng` is seeded
// explicitly, and independent substreams for repetitions are derived with
// `fork()` so that adding instrumentation never perturbs results.
//
// Besides the standard distributions, this header provides an exact
// hypergeometric sampler and a multivariate-hypergeometric sampler.  The
// shuffle simulators rely on them to place M bots across replica buckets of
// sizes x_1..x_P in O(P * sqrt(mean)) time instead of O(N) per round, which
// is what makes the paper-scale experiments (100K bots, 2000 replicas,
// hundreds of rounds, 30 repetitions) run in seconds.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace shuffledef::util {

/// splitmix64: used to stretch user seeds into well-distributed state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Tiny 8-byte-state generator (one splitmix64 step per draw) for per-entity
/// substreams at population scale: a million bots each carrying their own
/// `SmallRng` cost 8 MB, where a million forked `Rng`s (mt19937_64) would
/// cost gigabytes.  Streams are derived with `Rng::fork_small(salt)`, so
/// per-entity draws are independent of the order entities are visited in —
/// the property that lets the client-level simulator shard its behavior
/// sweeps across threads and stay bit-identical at every thread count.
class SmallRng {
 public:
  explicit SmallRng(std::uint64_t seed = 0) : state_(seed) {}

  std::uint64_t next_u64() { return splitmix64(state_); }

  /// Uniform in [0, 1) (53 random bits, like Rng::uniform).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Same edge-case contract as Rng::bernoulli: p <= 0 and p >= 1 decide
  /// without consuming a draw.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL);

  /// Derive an independent substream; deterministic in (parent seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const;

  /// Derive an independent 8-byte-state substream (see SmallRng); same
  /// (parent seed, salt) determinism as fork().
  [[nodiscard]] SmallRng fork_small(std::uint64_t salt) const;

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p);

  /// Poisson with the given mean (mean >= 0).
  std::int64_t poisson(double mean);

  /// Binomial(n, p).
  std::int64_t binomial(std::int64_t n, double p);

  /// Exponential with the given rate (> 0).
  double exponential(double rate);

  /// Normal(mean, stddev).
  double normal(double mean, double stddev);

  /// Exact hypergeometric draw: number of marked items in `draws` draws
  /// without replacement from `total` items of which `successes` are marked.
  /// Inverse-transform from the mode; expected cost O(stddev).
  std::int64_t hypergeometric(std::int64_t total, std::int64_t successes,
                              std::int64_t draws);

  /// Distribute `successes` marked items over buckets with the given sizes
  /// (a uniformly random placement of all sum(sizes) items).  Returns the
  /// marked count per bucket.  Exact: sequential conditional hypergeometric.
  std::vector<std::int64_t> multivariate_hypergeometric(
      std::span<const std::int64_t> bucket_sizes, std::int64_t successes);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Expose the engine for std distributions if ever needed.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace shuffledef::util

// Scenario builder: assembles a complete protected deployment.
//
// One call wires up the whole Figure-1 architecture — DNS, per-domain load
// balancers, initial replicas, the coordination server, the cloud provider
// — plus a client population and (optionally) a botnet with persistent and
// naive bots.  Tests, examples, and the Figure-12 bench all build on this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloudsim/botnet.h"
#include "cloudsim/client_agent.h"
#include "cloudsim/client_swarm.h"
#include "cloudsim/cloud_provider.h"
#include "cloudsim/coordination_server.h"
#include "cloudsim/dns_server.h"
#include "cloudsim/fault.h"
#include "cloudsim/load_balancer.h"
#include "cloudsim/node.h"
#include "cloudsim/replica_server.h"
#include "obs/registry.h"
#include "obs/snapshot.h"

namespace shuffledef::cloudsim {

/// Which client/bot engine a Scenario builds.
///
///  * kPerObject — one ClientAgent / PersistentBot heap object per member
///    (the original engine; per-member record vectors, per-timer closures).
///  * kFlat — one ClientSwarm node holding the whole population as SoA
///    columns, with pooled message delivery forced on.  Scales to 10^6
///    members; timers are quantized to `swarm_sweep_dt_s` and per-member
///    stats collapse to aggregates (see cloudsim/client_swarm.h).
enum class ClientEngine { kPerObject, kFlat };

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::string service = "www.example.com";

  // Infrastructure.
  std::int32_t domains = 2;
  std::int32_t load_balancers_per_domain = 1;
  std::int32_t initial_replicas = 2;
  std::int32_t hot_spares = 0;
  CoordinatorConfig coordinator;
  ReplicaConfig replica;
  double boot_delay_s = 0.5;

  // NICs.  Replica defaults approximate the prototype's EC2 micro instance
  // behind a shared link; client defaults approximate geo-distributed
  // PlanetLab nodes (base one-way latency drawn uniformly per client).
  NicConfig replica_nic{.egress_bps = 30e6, .ingress_bps = 30e6,
                        .base_latency_s = 0.002, .domain = 0};
  NicConfig lb_nic{.egress_bps = 1e9, .ingress_bps = 1e9,
                   .base_latency_s = 0.002, .domain = 0};
  NicConfig infra_nic{.egress_bps = 1e9, .ingress_bps = 1e9,
                      .base_latency_s = 0.002, .domain = 0};
  NicConfig client_nic{.egress_bps = 20e6, .ingress_bps = 20e6,
                       .base_latency_s = 0.04, .domain = 100};
  double client_latency_min_s = 0.01;
  double client_latency_max_s = 0.08;

  // Populations.
  std::int32_t clients = 10;
  double client_start_spread_s = 1.0;
  double client_request_timeout_s = 4.0;
  /// Mean think time between page reloads (0 = load once, prototype-style).
  double client_browse_think_s = 0.0;
  /// WebSocket keepalive interval (0 = disabled, prototype-style).
  double client_heartbeat_s = 0.0;
  std::int32_t persistent_bots = 0;
  std::int32_t naive_bots = 0;
  double bot_start_spread_s = 1.0;
  /// Delay before any bot starts (a step-function attack wave: the world
  /// runs clean until the offset, then the whole botnet arrives within the
  /// spread).  Both engines draw the same rng sequence, so the step keeps
  /// them aligned.
  double bot_start_offset_s = 0.0;
  double bot_junk_rate_pps = 0.0;
  double bot_heavy_interval_s = 0.0;
  double bot_heavy_cpu_seconds = 0.2;
  double naive_junk_rate_pps = 500.0;
  /// Persistent-bot behaviour: a core::AttackerStrategy registry name
  /// ("on-off", "coupon-collector", "churn", ...).  Empty = the legacy
  /// unconditional flood, with a world event/draw sequence bit-identical to
  /// the pre-registry scenario (fault_determinism_test relies on this).
  /// Per-bot behavior streams fork off the scenario seed chain, never the
  /// world's shared stream.
  std::string bot_strategy;
  core::StrategyOptions bot_strategy_options;
  /// Sim-time length of one strategy round for the bots.
  double bot_strategy_round_s = 1.0;

  // ---- engine selection ------------------------------------------------------
  /// Per-object agents (default) or the flat SoA ClientSwarm.
  ClientEngine client_engine = ClientEngine::kPerObject;
  /// Worker threads for the flat engine's sweep scan, its batched strategy
  /// rounds, and the replicas' shuffle-push fan-out build (1 = serial;
  /// results are bit-identical at every setting).
  std::int32_t shard_threads = 1;
  /// Flat engine timer granularity (timeouts/heartbeats/bot cadences fire
  /// on sweep boundaries).
  double swarm_sweep_dt_s = 0.25;
  /// Route traffic through the network's pooled slot arena (POD closures,
  /// no per-message allocation).  Forced on by the flat engine; off by
  /// default so the legacy engine stays the differential reference.
  bool pooled_delivery = false;
  /// Allow send_batch fan-outs to ride one walking event per batch (off
  /// degrades them to per-message sends — the batching oracle).
  bool batch_delivery = true;

  NetworkConfig network;

  /// Closed-loop QoS control plane (cloudsim/qos.h).  When `qos.enabled`
  /// the Scenario wires the whole loop: every replica (initial, spare, and
  /// autoscale-provisioned) samples and reports latency/queue depth, and
  /// the coordinator runs the phase machine + Theorem-1 autoscaler.  Off by
  /// default — the world stays bit-identical to a pre-QoS build.
  QosConfig qos;

  /// Fault injection (deterministic in `seed`): message loss/duplication,
  /// link flaps, replica crashes, provisioning faults.  A default-constructed
  /// config is inert — the world behaves exactly as if no injector existed.
  FaultConfig faults;

  /// Record every resolved message into Network::trace() (determinism
  /// golden tests; costs memory proportional to traffic).
  bool record_net_trace = false;

  /// Observability sink for the whole world — event loop, network, fault
  /// injector, coordinator, controller, planner, estimator all record here.
  /// nullptr = the Scenario owns a private registry (see
  /// Scenario::registry() / Scenario::metrics()).
  obs::Registry* registry = nullptr;

  /// All configuration violations at once (empty = valid).  The Scenario
  /// constructor throws std::invalid_argument listing every violation.
  [[nodiscard]] std::vector<std::string> validate() const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  /// Advance simulated time.  Returns false if the event budget blew up.
  bool run_until(SimTime t);

  [[nodiscard]] World& world() { return *world_; }
  [[nodiscard]] SimTime now() const { return world_->now(); }

  [[nodiscard]] DnsServer* dns() { return dns_; }
  [[nodiscard]] CoordinationServer* coordinator() { return coordinator_; }
  [[nodiscard]] CloudProvider& provider() { return *provider_; }
  [[nodiscard]] const std::vector<LoadBalancer*>& load_balancers() const {
    return load_balancers_;
  }
  [[nodiscard]] const std::vector<NodeId>& initial_replicas() const {
    return initial_replicas_;
  }
  /// Per-object engine only (empty under ClientEngine::kFlat).
  [[nodiscard]] const std::vector<ClientAgent*>& clients() const {
    return clients_;
  }
  /// Flat engine only (nullptr under ClientEngine::kPerObject).
  [[nodiscard]] ClientSwarm* swarm() { return swarm_; }
  [[nodiscard]] const std::vector<PersistentBot*>& persistent_bots() const {
    return persistent_bots_;
  }
  [[nodiscard]] const std::vector<NaiveBot*>& naive_bots() const {
    return naive_bots_;
  }
  [[nodiscard]] Botmaster* botmaster() { return botmaster_; }
  /// The shared persistent-bot strategy object (nullptr under the legacy
  /// flood, i.e. when ScenarioConfig::bot_strategy is empty).
  [[nodiscard]] const core::AttackerStrategy* bot_strategy() const {
    return bot_strategy_.get();
  }

  /// The installed fault injector, or nullptr when the fault config is
  /// inert.
  [[nodiscard]] const FaultInjector* fault_injector() const {
    return fault_.get();
  }
  /// Injected-fault counters (all zero when no injector is installed).
  [[nodiscard]] FaultStats fault_stats() const {
    return fault_ ? fault_->stats() : FaultStats{};
  }

  [[nodiscard]] ReplicaServer* replica(NodeId id);

  /// The world's metrics sink (the external one from ScenarioConfig, or the
  /// Scenario-owned default).
  [[nodiscard]] obs::Registry& registry() noexcept { return *registry_; }
  /// Convenience: a frozen snapshot of everything recorded so far.
  [[nodiscard]] obs::MetricsSnapshot metrics() const {
    return registry_->snapshot();
  }

  // ---- aggregate metrics ----------------------------------------------------

  /// Clients whose join flow completed (page loaded, WebSocket open).
  [[nodiscard]] std::int64_t clients_connected() const;

  /// Replicas currently serving at least one persistent bot.
  [[nodiscard]] std::int64_t replicas_hosting_bots() const;

  /// Benign clients currently on replicas that host no persistent bot.
  [[nodiscard]] std::int64_t benign_clients_isolated_from_bots() const;

 private:
  void crash_one_replica();
  void build_population(const ScenarioConfig& config);

  ClientEngine engine_ = ClientEngine::kPerObject;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_ = nullptr;  // effective sink (owned or external)
  std::unique_ptr<core::AttackerStrategy> bot_strategy_;
  std::unique_ptr<World> world_;
  std::unique_ptr<FaultInjector> fault_;
  std::unique_ptr<CloudProvider> provider_;
  DnsServer* dns_ = nullptr;
  CoordinationServer* coordinator_ = nullptr;
  std::vector<LoadBalancer*> load_balancers_;
  std::vector<NodeId> initial_replicas_;
  std::vector<ClientAgent*> clients_;
  ClientSwarm* swarm_ = nullptr;
  std::vector<PersistentBot*> persistent_bots_;
  std::vector<NaiveBot*> naive_bots_;
  Botmaster* botmaster_ = nullptr;
};

}  // namespace shuffledef::cloudsim

// Discrete-event simulation core.
//
// Single-threaded priority-queue scheduler over simulated seconds.  Events
// scheduled for the same instant fire in schedule order (a monotonically
// increasing sequence number breaks ties), which keeps every simulation
// deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace shuffledef::cloudsim {

using SimTime = double;  // seconds since simulation start

inline constexpr std::string_view kMetricLoopEventsDispatched =
    "loop.events_dispatched";

class EventLoop {
 public:
  /// Schedule `fn` at absolute simulated time `t` (finite, >= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` seconds (finite, >= 0).
  void schedule_after(SimTime delay, std::function<void()> fn);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Run events with time <= t_end; afterwards now() == t_end (or the time
  /// of the event that hit the event budget).  Returns false if the event
  /// budget was exhausted.
  bool run_until(SimTime t_end);

  /// Drain the queue completely.  Returns false on event-budget exhaustion.
  bool run();

  /// Guard against runaway simulations (default: 200M events).
  void set_event_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// Mirror dispatched-event counts onto kMetricLoopEventsDispatched
  /// (nullptr detaches).  `processed()` stays authoritative.
  void set_registry(obs::Registry* registry) {
    dispatched_ = registry == nullptr
                      ? obs::Counter{}
                      : registry->counter(kMetricLoopEventsDispatched);
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t budget_ = 200'000'000;
  obs::Counter dispatched_;  // null handle when uninstrumented
};

}  // namespace shuffledef::cloudsim

// Discrete-event simulation core.
//
// Single-threaded priority-queue scheduler over simulated seconds.  Events
// scheduled for the same instant fire in schedule order (a monotonically
// increasing sequence number breaks ties), which keeps every simulation
// deterministic for a given seed.
//
// The heap is an explicit vector (std::push_heap / std::pop_heap with the
// same comparator std::priority_queue would use) so large scenarios can
// reserve() capacity up front and pop without the const_cast idiom.
//
// Two event flavours share one global (time, sequence) order: general
// std::function closures, and POD fast-path events — a registered handler
// index plus two 32-bit words — for subsystems that schedule millions of
// events and cannot afford a 48-byte type-erased node per pop.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "obs/registry.h"

namespace shuffledef::cloudsim {

using SimTime = double;  // seconds since simulation start

inline constexpr std::string_view kMetricLoopEventsDispatched =
    "loop.events_dispatched";

class EventLoop {
 public:
  /// Handler for POD fast-path events (see register_pod_handler).
  using PodHandler = void (*)(void* ctx, std::uint32_t a, std::uint32_t b);

  /// Schedule `fn` at absolute simulated time `t` (finite, >= now).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` seconds (finite, >= 0).
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Register a POD event kind: a plain function pointer plus an opaque
  /// context, called as handler(ctx, a, b).  Hot subsystems (the network's
  /// delivery walkers) register once and then schedule millions of events
  /// that cost a 32-byte heap node each — no std::function, no allocation,
  /// no destructor on pop.  The registrant must outlive the loop's run.
  std::uint16_t register_pod_handler(PodHandler handler, void* ctx);

  /// Schedule a POD event at absolute time `t` (finite, >= now).  POD and
  /// std::function events pop in one global (time, schedule-order) sequence,
  /// so determinism is exactly as if both lived in a single queue.
  void schedule_pod_at(SimTime t, std::uint16_t kind, std::uint32_t a,
                       std::uint32_t b);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept {
    return queue_.empty() && pod_queue_.empty();
  }
  [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

  /// Pre-size the event heaps (large scenarios avoid growth reallocations).
  void reserve(std::size_t events) {
    queue_.reserve(events);
    pod_queue_.reserve(events);
  }

  /// Run events with time <= t_end; afterwards now() == t_end (or the time
  /// of the event that hit the event budget).  Returns false if the event
  /// budget was exhausted.
  bool run_until(SimTime t_end);

  /// Drain the queue completely.  Returns false on event-budget exhaustion.
  bool run();

  /// Guard against runaway simulations (default: 200M events).
  void set_event_budget(std::uint64_t budget) noexcept { budget_ = budget; }

  /// Mirror dispatched-event counts onto kMetricLoopEventsDispatched
  /// (nullptr detaches).  `processed()` stays authoritative.
  void set_registry(obs::Registry* registry) {
    dispatched_ = registry == nullptr
                      ? obs::Counter{}
                      : registry->counter(kMetricLoopEventsDispatched);
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct PodEvent {
    SimTime time;
    std::uint64_t seq;  // shared counter with Event: one global tie order
    std::uint32_t a;
    std::uint32_t b;
    std::uint16_t kind;
  };
  /// "a fires before b" — strict (time, seq) order.
  static bool pod_before(const PodEvent& a, const PodEvent& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  struct PodKind {
    PodHandler handler = nullptr;
    void* ctx = nullptr;
  };

  /// Pop the earliest event off the heap (caller checked non-empty).
  Event pop_front();
  PodEvent pop_pod();
  void push_pod(const PodEvent& ev);
  void validate_time(SimTime t) const;

  std::vector<Event> queue_;  // binary heap ordered by Later
  // 4-ary min-heap by (time, seq): POD events pop at half the sift depth
  // of a binary heap, and a 32-byte element moves in one cache-line step.
  std::vector<PodEvent> pod_queue_;
  std::vector<PodKind> pod_kinds_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t budget_ = 200'000'000;
  obs::Counter dispatched_;  // null handle when uninstrumented
};

}  // namespace shuffledef::cloudsim

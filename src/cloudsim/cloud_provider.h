// Cloud provider control API: replica instance lifecycle.
//
// Models the IaaS operations the defense leans on (paper §III, §VII):
// instantiating a replica server at a fresh, unpublished network location
// (hot-spare activation after `boot_delay_s`) and recycling attacked
// instances.  Placement cycles across the configured domains so consecutive
// replicas land in different failure/bandwidth domains.
//
// A FaultInjector (cloudsim/fault.h) can make instantiation unreliable:
// boot delays stretch by a configurable factor and a requested instance may
// silently never come up — `ready` simply never fires for it, exactly like
// an IaaS request that times out.  Callers that must survive this (the
// coordination server) wrap requests in their own watchdog + retry.
//
// This is infrastructure control, not data-plane traffic, so it is a plain
// object driven through the event loop rather than a Node.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "cloudsim/node.h"
#include "cloudsim/replica_server.h"
#include "obs/registry.h"

namespace shuffledef::cloudsim {

class FaultInjector;

// Registry metric names mirroring the provider's lifecycle counters.
inline constexpr std::string_view kMetricProviderProvisioned =
    "provider.provisioned";
inline constexpr std::string_view kMetricProviderRecycled =
    "provider.recycled";
inline constexpr std::string_view kMetricProviderActiveReplicas =
    "provider.active_replicas";
inline constexpr std::string_view kMetricProviderActiveReplicasPeak =
    "provider.active_replicas_peak";

struct CloudProviderConfig {
  double boot_delay_s = 0.5;  // hot-spare activation, not a cold boot
  NicConfig replica_nic;
  ReplicaConfig replica;
  std::vector<std::int32_t> domains = {0};
};

class CloudProvider {
 public:
  CloudProvider(World& world, CloudProviderConfig config);

  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }

  /// Install a fault injector consulted per provision attempt (nullptr =
  /// reliable; non-owning).
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Record lifecycle counters + the active-replica gauge (and its peak —
  /// the autoscaler's footprint) into `registry` (nullptr = uninstrumented).
  void set_registry(obs::Registry* registry);

  /// Boot one replica in the next domain; `ready` fires with its address
  /// after the (possibly fault-stretched) boot delay.  Under injected
  /// provisioning failures `ready` may never fire.
  void provision(std::function<void(NodeId)> ready);

  /// Boot `count` replicas; `ready` fires once with all addresses when the
  /// last one is up.  Under injected provisioning failures `ready` may
  /// never fire — prefer per-instance provision() plus a watchdog when
  /// faults are in play.
  void provision_many(std::int64_t count,
                      std::function<void(std::vector<NodeId>)> ready);

  /// Terminate an instance: its NIC detaches, in-flight traffic is dropped.
  void recycle(NodeId replica);

  /// Take over `count` replicas that were spawned outside provision() (the
  /// world-start fleet).  They join the active ledger so a later recycle of
  /// one of them balances; provisioned() keeps counting only actual boots.
  void adopt(std::int64_t count);

  [[nodiscard]] std::int64_t requested() const { return requested_; }
  [[nodiscard]] std::int64_t provisioned() const { return provisioned_; }
  [[nodiscard]] std::int64_t failed() const { return failed_; }
  [[nodiscard]] std::int64_t recycled() const { return recycled_; }
  [[nodiscard]] std::int64_t active() const {
    return adopted_ + provisioned_ - recycled_;
  }

 private:
  World& world_;
  CloudProviderConfig config_;
  NodeId coordinator_ = kInvalidNode;
  FaultInjector* fault_ = nullptr;
  std::size_t next_domain_ = 0;
  std::int64_t requested_ = 0;    // provision() calls (also names instances)
  std::int64_t adopted_ = 0;      // world-start fleet taken over via adopt()
  std::int64_t provisioned_ = 0;  // instances that actually came up
  std::int64_t failed_ = 0;       // instances that never booted
  std::int64_t recycled_ = 0;
  void note_active();
  // Null handles until set_registry.
  obs::Counter provisioned_metric_, recycled_metric_;
  obs::Gauge active_metric_, active_peak_metric_;
};

}  // namespace shuffledef::cloudsim

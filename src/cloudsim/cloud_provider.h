// Cloud provider control API: replica instance lifecycle.
//
// Models the IaaS operations the defense leans on (paper §III, §VII):
// instantiating a replica server at a fresh, unpublished network location
// (hot-spare activation after `boot_delay_s`) and recycling attacked
// instances.  Placement cycles across the configured domains so consecutive
// replicas land in different failure/bandwidth domains.
//
// This is infrastructure control, not data-plane traffic, so it is a plain
// object driven through the event loop rather than a Node.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cloudsim/node.h"
#include "cloudsim/replica_server.h"

namespace shuffledef::cloudsim {

struct CloudProviderConfig {
  double boot_delay_s = 0.5;  // hot-spare activation, not a cold boot
  NicConfig replica_nic;
  ReplicaConfig replica;
  std::vector<std::int32_t> domains = {0};
};

class CloudProvider {
 public:
  CloudProvider(World& world, CloudProviderConfig config);

  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }

  /// Boot one replica in the next domain; `ready` fires with its address
  /// after boot_delay_s.
  void provision(std::function<void(NodeId)> ready);

  /// Boot `count` replicas; `ready` fires once with all addresses when the
  /// last one is up.
  void provision_many(std::int64_t count,
                      std::function<void(std::vector<NodeId>)> ready);

  /// Terminate an instance: its NIC detaches, in-flight traffic is dropped.
  void recycle(NodeId replica);

  [[nodiscard]] std::int64_t provisioned() const { return provisioned_; }
  [[nodiscard]] std::int64_t recycled() const { return recycled_; }
  [[nodiscard]] std::int64_t active() const { return provisioned_ - recycled_; }

 private:
  World& world_;
  CloudProviderConfig config_;
  NodeId coordinator_ = kInvalidNode;
  std::size_t next_domain_ = 0;
  std::int64_t provisioned_ = 0;
  std::int64_t recycled_ = 0;
};

}  // namespace shuffledef::cloudsim

// Cloud provider control API: replica instance lifecycle.
//
// Models the IaaS operations the defense leans on (paper §III, §VII):
// instantiating a replica server at a fresh, unpublished network location
// (hot-spare activation after `boot_delay_s`) and recycling attacked
// instances.  Placement cycles across the configured domains so consecutive
// replicas land in different failure/bandwidth domains.
//
// A FaultInjector (cloudsim/fault.h) can make instantiation unreliable:
// boot delays stretch by a configurable factor and a requested instance may
// silently never come up — `ready` simply never fires for it, exactly like
// an IaaS request that times out.  Callers that must survive this (the
// coordination server) wrap requests in their own watchdog + retry.
//
// This is infrastructure control, not data-plane traffic, so it is a plain
// object driven through the event loop rather than a Node.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cloudsim/node.h"
#include "cloudsim/replica_server.h"

namespace shuffledef::cloudsim {

class FaultInjector;

struct CloudProviderConfig {
  double boot_delay_s = 0.5;  // hot-spare activation, not a cold boot
  NicConfig replica_nic;
  ReplicaConfig replica;
  std::vector<std::int32_t> domains = {0};
};

class CloudProvider {
 public:
  CloudProvider(World& world, CloudProviderConfig config);

  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }

  /// Install a fault injector consulted per provision attempt (nullptr =
  /// reliable; non-owning).
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Boot one replica in the next domain; `ready` fires with its address
  /// after the (possibly fault-stretched) boot delay.  Under injected
  /// provisioning failures `ready` may never fire.
  void provision(std::function<void(NodeId)> ready);

  /// Boot `count` replicas; `ready` fires once with all addresses when the
  /// last one is up.  Under injected provisioning failures `ready` may
  /// never fire — prefer per-instance provision() plus a watchdog when
  /// faults are in play.
  void provision_many(std::int64_t count,
                      std::function<void(std::vector<NodeId>)> ready);

  /// Terminate an instance: its NIC detaches, in-flight traffic is dropped.
  void recycle(NodeId replica);

  [[nodiscard]] std::int64_t requested() const { return requested_; }
  [[nodiscard]] std::int64_t provisioned() const { return provisioned_; }
  [[nodiscard]] std::int64_t failed() const { return failed_; }
  [[nodiscard]] std::int64_t recycled() const { return recycled_; }
  [[nodiscard]] std::int64_t active() const { return provisioned_ - recycled_; }

 private:
  World& world_;
  CloudProviderConfig config_;
  NodeId coordinator_ = kInvalidNode;
  FaultInjector* fault_ = nullptr;
  std::size_t next_domain_ = 0;
  std::int64_t requested_ = 0;    // provision() calls (also names instances)
  std::int64_t provisioned_ = 0;  // instances that actually came up
  std::int64_t failed_ = 0;       // instances that never booted
  std::int64_t recycled_ = 0;
};

}  // namespace shuffledef::cloudsim

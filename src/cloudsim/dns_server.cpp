#include "cloudsim/dns_server.h"

#include <algorithm>

#include "util/logging.h"

namespace shuffledef::cloudsim {

DnsServer::DnsServer(World& world, std::string name)
    : Node(world, std::move(name)) {}

void DnsServer::register_load_balancer(const std::string& service, NodeId lb) {
  register_load_balancer(world().intern_service(service), lb);
}

void DnsServer::register_load_balancer(ServiceId service, NodeId lb) {
  records_[service].load_balancers.push_back(lb);
}

void DnsServer::unregister_load_balancer(const std::string& service,
                                         NodeId lb) {
  unregister_load_balancer(world().intern_service(service), lb);
}

void DnsServer::unregister_load_balancer(ServiceId service, NodeId lb) {
  auto it = records_.find(service);
  if (it == records_.end()) return;
  auto& lbs = it->second.load_balancers;
  lbs.erase(std::remove(lbs.begin(), lbs.end(), lb), lbs.end());
  it->second.next = 0;
}

void DnsServer::on_message(const Message& msg) {
  if (msg.type != MessageType::kDnsQuery) return;
  const auto& query = payload_as<DnsQueryPayload>(msg);
  auto it = records_.find(query.service);
  if (it == records_.end() || it->second.load_balancers.empty()) {
    SDEF_LOG(Warn) << name() << ": no record for service id " << query.service;
    return;  // NXDOMAIN: silently dropped, client will time out
  }
  auto& record = it->second;
  const NodeId lb = record.load_balancers[record.next % record.load_balancers.size()];
  record.next = (record.next + 1) % record.load_balancers.size();
  ++queries_;
  send(msg.src, MessageType::kDnsReply, kDnsMessageBytes,
       DnsReplyPayload{query.service, lb});
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/botnet.h"

#include <algorithm>

#include "util/logging.h"

namespace shuffledef::cloudsim {

// ---- PersistentBot ---------------------------------------------------------

PersistentBot::PersistentBot(World& world, std::string name,
                             PersistentBotConfig config)
    : ClientAgent(world, std::move(name), config.client),
      bot_config_(config),
      strategy_state_(config.strategy_state) {}

void PersistentBot::on_connected() {
  report_target();
  if (attacking_) return;
  attacking_ = true;
  if (bot_config_.strategy != nullptr) strategy_tick();
  if (bot_config_.junk_rate_pps > 0.0) junk_tick();
  if (bot_config_.heavy_interval_s > 0.0) heavy_tick();
}

void PersistentBot::strategy_tick() {
  // One strategy round: the bot re-decides whether it attacks.  Draws come
  // only from the bot's private stream, so the decision sequence is
  // independent of event interleaving and of every other bot.
  const core::StrategyContext ctx{++strategy_round_,
                                  bot_config_.strategy_replicas};
  active_ = bot_config_.strategy->decide_one(ctx, strategy_state_);
  loop().schedule_after(bot_config_.strategy_round_s,
                        [this] { strategy_tick(); });
}

void PersistentBot::on_migrated(NodeId /*new_replica*/) {
  // Followed the moving target; re-aim and tell the botmaster.
  report_target();
  if (bot_config_.strategy != nullptr &&
      bot_config_.strategy->reacts_to_shuffle()) {
    const core::StrategyContext ctx{strategy_round_,
                                    bot_config_.strategy_replicas};
    const core::Count away =
        bot_config_.strategy->on_shuffled_one(ctx, strategy_state_);
    if (away >= 0) {
      // Departing bots go dark instead of tearing the connection down: the
      // strategy parked an away counter in the bot state, and decide_one's
      // away guard keeps the bot inactive until it drains.
      active_ = false;
    }
  }
}

void PersistentBot::report_target() {
  if (bot_config_.botmaster == kInvalidNode) return;
  send(bot_config_.botmaster, MessageType::kBotReport, kControlMessageBytes,
       BotReportPayload{current_replica()});
}

void PersistentBot::junk_tick() {
  // The tick keeps its cadence (and its draw) even while the strategy holds
  // the bot dormant, so enabling a strategy never shifts the timing stream.
  if (active_ && current_replica() != kInvalidNode && connected()) {
    send(current_replica(), MessageType::kJunkPacket, kJunkPacketBytes);
    ++junk_sent_;
  }
  // Exponential inter-packet gaps (Poisson traffic).
  loop().schedule_after(rng().exponential(bot_config_.junk_rate_pps),
                        [this] { junk_tick(); });
}

void PersistentBot::heavy_tick() {
  if (active_ && current_replica() != kInvalidNode && connected()) {
    send(current_replica(), MessageType::kHeavyRequest, kHttpRequestBytes,
         HeavyRequestPayload{ip_id(), bot_config_.heavy_cpu_seconds});
    ++heavy_sent_;
  }
  loop().schedule_after(bot_config_.heavy_interval_s, [this] { heavy_tick(); });
}

// ---- NaiveBot --------------------------------------------------------------

NaiveBot::NaiveBot(World& world, std::string name, NaiveBotConfig config)
    : Node(world, std::move(name)), config_(config) {}

void NaiveBot::on_message(const Message& msg) {
  if (msg.type != MessageType::kFloodCommand) return;
  const auto& cmd = payload_as<FloodCommandPayload>(msg);
  targets_ = cmd.targets;
  next_target_ = 0;
  if (!ticking_ && !targets_.empty() && config_.junk_rate_pps > 0.0) {
    ticking_ = true;
    flood_tick();
  }
}

void NaiveBot::flood_tick() {
  if (targets_.empty()) {
    ticking_ = false;
    return;
  }
  // Naive bots keep hammering stale addresses; the network drops traffic to
  // recycled instances, which is precisely the evasion effect.
  const NodeId target = targets_[next_target_ % targets_.size()];
  next_target_ = (next_target_ + 1) % targets_.size();
  send(target, MessageType::kJunkPacket, kJunkPacketBytes);
  ++junk_sent_;
  loop().schedule_after(rng().exponential(config_.junk_rate_pps),
                        [this] { flood_tick(); });
}

// ---- Botmaster -------------------------------------------------------------

Botmaster::Botmaster(World& world, std::string name, BotmasterConfig config)
    : Node(world, std::move(name)), config_(config) {}

void Botmaster::on_start() {
  loop().schedule_after(config_.command_interval_s, [this] { command_tick(); });
}

void Botmaster::on_message(const Message& msg) {
  if (msg.type != MessageType::kBotReport) return;
  const auto& report = payload_as<BotReportPayload>(msg);
  if (report.observed_replica == kInvalidNode) return;
  if (hit_list_.insert(report.observed_replica).second) {
    hit_list_dirty_ = true;
  }
}

void Botmaster::command_tick() {
  // Drop recycled replicas from the hit list only when a persistent bot
  // reports a fresh address — the botmaster itself cannot tell a silent
  // target from a dead one (naive bots flood dead addresses meanwhile).
  if (hit_list_dirty_ && !naive_bots_.empty()) {
    hit_list_dirty_ = false;
    FloodCommandPayload cmd;
    cmd.targets.assign(hit_list_.begin(), hit_list_.end());
    for (const NodeId bot : naive_bots_) {
      send(bot, MessageType::kFloodCommand, kControlMessageBytes, cmd);
    }
  }
  loop().schedule_after(config_.command_interval_s, [this] { command_tick(); });
}

}  // namespace shuffledef::cloudsim

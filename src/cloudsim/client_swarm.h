// Flat client/bot engine: the whole population as one Node (SoA columns).
//
// The per-object engine (ClientAgent / PersistentBot) spends most of a
// large run allocating: one heap object per client, one heap-backed
// std::function per timeout/heartbeat/browse timer, one per junk packet.
// The ClientSwarm replaces all of that with contiguous columns — phase,
// assigned replica, deadlines, per-member SmallRng streams — indexed by a
// dense member id, exactly the technique the sim-layer client store uses.
//
// Mechanics:
//
//  * Every member still owns a real network address: World::attach_port
//    gives the swarm one port per member, so the Network's NIC model, the
//    load balancer's spoofing check, and replica whitelists are unchanged.
//    `msg.dst - base_port()` recovers the member index in O(1).
//  * Message-driven transitions (DNS replies, redirects, page loads,
//    WebSocket pushes) run per message, mirroring ClientAgent's state
//    machine field for field.
//  * Time-driven behaviour (request timeouts, heartbeats, browse reloads,
//    bot junk/heavy cadences) runs in a periodic *sweep*: one repeating
//    scheduled event scans the deadline columns instead of one scheduled
//    closure per timer.  Deadlines therefore fire on sweep boundaries —
//    quantized by at most `sweep_dt_s` — which is the documented accuracy
//    contract of the flat engine.
//  * The sweep's scan phase and the botnet's strategy rounds shard across
//    util::ThreadPool::shared() under the deterministic-chunk contract:
//    every draw comes from a per-member SmallRng and every write lands in
//    that member's own column slot, so results are bit-identical at every
//    `shard_threads` setting.  All sends happen in a serial emission pass
//    in member-index order; the event loop stays single-threaded.
//
// Benign members join exactly like ClientAgents (DNS -> LB -> page ->
// WebSocket) and bots are trailing members whose attack activity is decided
// by a shared core::AttackerStrategy through its batched span API.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cloudsim/node.h"
#include "core/attacker_strategy.h"

namespace shuffledef::cloudsim {

struct SwarmConfig {
  std::string service = "www.example.com";
  NodeId dns = kInvalidNode;

  // Benign-member behaviour (mirrors ClientConfig).
  double request_timeout_s = 4.0;
  int max_retries = 4;
  double browse_think_s = 0.0;   // 0 = load once (prototype-style)
  double heartbeat_s = 0.0;      // 0 = no keepalive

  // Bot members (mirror PersistentBotConfig; bots never browse/heartbeat).
  NodeId botmaster = kInvalidNode;
  double bot_request_timeout_s = 4.0;
  double bot_junk_rate_pps = 0.0;
  double bot_heavy_interval_s = 0.0;
  double bot_heavy_cpu_seconds = 0.2;
  /// Shared strategy (non-owning; nullptr = legacy unconditional flood).
  const core::AttackerStrategy* strategy = nullptr;
  double strategy_round_s = 1.0;
  std::int32_t strategy_replicas = 0;

  /// Sweep cadence: the timer-quantization granularity of the flat engine.
  double sweep_dt_s = 0.25;
  /// Worker threads for the sweep scan and batched strategy rounds (1 =
  /// serial).  Bit-identical results at every setting.
  int shard_threads = 1;

  /// Root for per-member behaviour streams (browse gaps, junk cadences);
  /// member i draws from behavior_root.fork_small(i).
  util::Rng behavior_root{0};
};

/// Aggregate population statistics (the flat engine trades the per-object
/// engine's per-client record vectors for counters + sums).
struct SwarmStats {
  std::int64_t page_loads = 0;
  std::int64_t timeouts = 0;
  std::int64_t rejoins = 0;
  std::int64_t heartbeat_failures = 0;
  std::int64_t migrations_completed = 0;
  std::int64_t junk_sent = 0;
  std::int64_t heavy_sent = 0;
  double first_page_at = -1.0;
  double page_load_seconds_sum = 0.0;     // over page_loads
  double migration_seconds_sum = 0.0;     // over migrations_completed
};

class ClientSwarm final : public Node {
 public:
  ClientSwarm(World& world, std::string name, SwarmConfig config);

  /// Add one benign member (before finalize()).  Returns its member index.
  std::int32_t add_client(const NicConfig& nic, double start_time_s);
  /// Add one bot member (after every benign member).  Bots carry a
  /// strategy-state record seeded by the caller (scenario seed chain).
  std::int32_t add_bot(const NicConfig& nic, double start_time_s,
                       core::BotState state);

  /// Start the engine: schedules the sweep and the strategy round cadence.
  /// Call once, after the last add_*().
  void finalize();

  void on_message(const Message& msg) override;

  [[nodiscard]] std::int32_t members() const {
    return static_cast<std::int32_t>(port_.size());
  }
  [[nodiscard]] std::int32_t benign_members() const { return first_bot_; }
  [[nodiscard]] std::int32_t bot_members() const {
    return members() - first_bot_;
  }
  [[nodiscard]] NodeId member_port(std::int32_t i) const {
    return port_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] IpId member_ip(std::int32_t i) const {
    return ip_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] bool connected(std::int32_t i) const {
    return phase_[static_cast<std::size_t>(i)] == kConnected;
  }
  [[nodiscard]] NodeId current_replica(std::int32_t i) const {
    return replica_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] bool bot_active(std::int32_t bot) const {
    return bot_active_[static_cast<std::size_t>(bot)] != 0;
  }

  [[nodiscard]] std::int64_t clients_connected() const;
  [[nodiscard]] const SwarmStats& stats() const { return stats_; }

 private:
  // Phases mirror ClientAgent::Phase.
  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kResolving = 1;
  static constexpr std::uint8_t kContactingLb = 2;
  static constexpr std::uint8_t kLoadingPage = 3;
  static constexpr std::uint8_t kOpeningWs = 4;
  static constexpr std::uint8_t kConnected = 5;

  // flags_ bits.
  static constexpr std::uint8_t kMigrating = 1u << 0;
  static constexpr std::uint8_t kHbAwait = 1u << 1;

  // Sweep scratch action bits (written in the parallel scan, consumed by
  // the serial emission pass).
  static constexpr std::uint8_t kActTimeout = 1u << 0;
  static constexpr std::uint8_t kActHbPing = 1u << 1;
  static constexpr std::uint8_t kActHbFail = 1u << 2;
  static constexpr std::uint8_t kActBrowse = 1u << 3;
  static constexpr std::uint8_t kActBot = 1u << 4;  // junk/heavy due

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  std::int32_t add_member(const NicConfig& nic, double start_time_s);
  [[nodiscard]] std::int32_t member_of(NodeId port) const {
    return static_cast<std::int32_t>(port - base_port_);
  }
  [[nodiscard]] bool is_bot(std::int32_t i) const { return i >= first_bot_; }
  [[nodiscard]] double timeout_s(std::int32_t i) const {
    return is_bot(i) ? config_.bot_request_timeout_s
                     : config_.request_timeout_s;
  }
  [[nodiscard]] double exp_gap(std::int32_t i, double rate);

  void begin_join(std::int32_t i);
  /// One walking event starts every member at its start instant in
  /// (start-time, add-order) sequence — replacing one scheduled closure per
  /// member, the dominant heap load while a million-member world boots.
  void start_walk();
  void request_page(std::int32_t i);
  void handle_connected(std::int32_t i, bool migrated);
  void handle_timeout(std::int32_t i);
  void bot_report(std::int32_t i);

  void sweep();
  void scan_member(std::int32_t i, double now);
  void emit_actions(double now);
  void strategy_round();

  SwarmConfig config_;
  ServiceId service_id_ = kInvalidService;
  NodeId base_port_ = kInvalidNode;  // port of member 0
  std::int32_t first_bot_ = 0;       // members [first_bot_, n) are bots
  bool finalized_ = false;
  core::Count round_ = 0;

  // Start schedule: absolute instants, walked in sorted order by one event
  // chain after finalize(); freed once every member has started.
  std::vector<double> start_at_;
  std::vector<std::int32_t> start_order_;
  std::size_t start_next_ = 0;

  // ---- SoA columns (size = members()) --------------------------------------
  std::vector<NodeId> port_;
  std::vector<IpId> ip_;
  std::vector<std::uint8_t> phase_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::int16_t> retries_;
  std::vector<NodeId> lb_;
  std::vector<NodeId> replica_;
  std::vector<NodeId> ws_replica_;
  std::vector<double> deadline_;      // pending-request timeout (kNever: none)
  std::vector<double> hb_next_;       // next keepalive ping
  std::vector<double> hb_deadline_;   // pong deadline while kHbAwait
  std::vector<double> browse_next_;   // next page reload
  std::vector<double> page_requested_at_;
  std::vector<double> migration_started_at_;
  std::vector<util::SmallRng> stream_;  // per-member behaviour stream
  std::vector<std::uint8_t> action_;    // sweep scratch

  // ---- bot-local columns (size = bot_members(), index i - first_bot_) ------
  std::vector<core::BotState> bot_state_;
  std::vector<std::uint8_t> bot_started_;  // connected at least once
  std::vector<std::uint8_t> bot_active_;   // attacking this round
  std::vector<double> junk_next_;
  std::vector<double> heavy_next_;
  std::vector<std::uint16_t> junk_due_;    // sweep scratch
  std::vector<std::uint16_t> heavy_due_;   // sweep scratch

  SwarmStats stats_;
};

}  // namespace shuffledef::cloudsim

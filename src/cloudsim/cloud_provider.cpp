#include "cloudsim/cloud_provider.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "cloudsim/fault.h"

namespace shuffledef::cloudsim {

CloudProvider::CloudProvider(World& world, CloudProviderConfig config)
    : world_(world), config_(std::move(config)) {
  if (config_.domains.empty()) {
    throw std::invalid_argument("CloudProvider: needs at least one domain");
  }
  if (config_.boot_delay_s < 0.0) {
    throw std::invalid_argument("CloudProvider: negative boot delay");
  }
}

void CloudProvider::set_registry(obs::Registry* registry) {
  if (registry == nullptr) return;
  provisioned_metric_ = registry->counter(kMetricProviderProvisioned);
  recycled_metric_ = registry->counter(kMetricProviderRecycled);
  active_metric_ = registry->gauge(kMetricProviderActiveReplicas);
  active_peak_metric_ = registry->gauge(kMetricProviderActiveReplicasPeak);
}

void CloudProvider::note_active() {
  active_metric_.set(active());
  active_peak_metric_.max_with(active());
}

void CloudProvider::provision(std::function<void(NodeId)> ready) {
  const std::int32_t domain =
      config_.domains[next_domain_ % config_.domains.size()];
  ++next_domain_;
  const std::int64_t serial = ++requested_;
  const double delay = fault_ != nullptr
                           ? fault_->provision_delay(config_.boot_delay_s)
                           : config_.boot_delay_s;
  world_.loop().schedule_after(
      delay, [this, domain, serial, ready = std::move(ready)]() {
        if (fault_ != nullptr && fault_->provision_fails()) {
          // The instance never comes up; the caller's watchdog deals with it.
          ++failed_;
          return;
        }
        ++provisioned_;
        provisioned_metric_.inc();
        note_active();
        NicConfig nic = config_.replica_nic;
        nic.domain = domain;
        auto* replica = world_.spawn<ReplicaServer>(
            nic, "replica-" + std::to_string(serial), config_.replica,
            coordinator_);
        ready(replica->id());
      });
}

void CloudProvider::provision_many(
    std::int64_t count, std::function<void(std::vector<NodeId>)> ready) {
  if (count <= 0) {
    throw std::invalid_argument("provision_many: count must be positive");
  }
  auto collected = std::make_shared<std::vector<NodeId>>();
  collected->reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    provision([collected, count, ready](NodeId id) {
      collected->push_back(id);
      if (static_cast<std::int64_t>(collected->size()) == count) {
        ready(*collected);
      }
    });
  }
}

void CloudProvider::adopt(std::int64_t count) {
  if (count < 0) {
    throw std::invalid_argument("adopt: count must be non-negative");
  }
  adopted_ += count;
  note_active();
}

void CloudProvider::recycle(NodeId replica) {
  world_.retire(replica);
  ++recycled_;
  recycled_metric_.inc();
  note_active();
}

}  // namespace shuffledef::cloudsim

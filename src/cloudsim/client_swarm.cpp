#include "cloudsim/client_swarm.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>

#include "util/thread_pool.h"

namespace shuffledef::cloudsim {

namespace {
// Below this population the parallel scan costs more than it saves.
constexpr std::int32_t kShardMinMembers = 4096;
constexpr std::int64_t kShardGrain = 4096;
}  // namespace

ClientSwarm::ClientSwarm(World& world, std::string name, SwarmConfig config)
    : Node(world, std::move(name)), config_(std::move(config)) {
  if (config_.sweep_dt_s <= 0.0) {
    throw std::invalid_argument("ClientSwarm: sweep_dt_s must be > 0");
  }
  if (config_.shard_threads < 1) {
    throw std::invalid_argument("ClientSwarm: shard_threads must be >= 1");
  }
  service_id_ = this->world().intern_service(config_.service);
}

std::int32_t ClientSwarm::add_member(const NicConfig& nic,
                                     double start_time_s) {
  if (finalized_) {
    throw std::logic_error("ClientSwarm: add after finalize()");
  }
  const auto i = static_cast<std::int32_t>(port_.size());
  const NodeId port = world().attach_port(this, nic);
  if (i == 0) {
    base_port_ = port;
  } else if (port != base_port_ + i) {
    // The O(1) dst->index mapping requires the member ports to be a
    // contiguous id range; interleaving other attachments breaks it.
    throw std::logic_error("ClientSwarm: member ports must be contiguous");
  }
  const IpId ip = world().alloc_ip();
  world().register_ip(ip, port);

  port_.push_back(port);
  ip_.push_back(ip);
  phase_.push_back(kIdle);
  flags_.push_back(0);
  retries_.push_back(0);
  lb_.push_back(kInvalidNode);
  replica_.push_back(kInvalidNode);
  ws_replica_.push_back(kInvalidNode);
  deadline_.push_back(kNever);
  hb_next_.push_back(kNever);
  hb_deadline_.push_back(kNever);
  browse_next_.push_back(kNever);
  page_requested_at_.push_back(0.0);
  migration_started_at_.push_back(0.0);
  stream_.push_back(
      config_.behavior_root.fork_small(static_cast<std::uint64_t>(i)));
  action_.push_back(0);

  if (!std::isfinite(start_time_s) || start_time_s < 0.0) {
    throw std::invalid_argument("ClientSwarm: invalid start time");
  }
  start_at_.push_back(loop().now() + start_time_s);
  return i;
}

std::int32_t ClientSwarm::add_client(const NicConfig& nic,
                                     double start_time_s) {
  if (first_bot_ != static_cast<std::int32_t>(port_.size())) {
    throw std::logic_error("ClientSwarm: benign members must precede bots");
  }
  const std::int32_t i = add_member(nic, start_time_s);
  first_bot_ = i + 1;
  return i;
}

std::int32_t ClientSwarm::add_bot(const NicConfig& nic, double start_time_s,
                                  core::BotState state) {
  const std::int32_t i = add_member(nic, start_time_s);
  bot_state_.push_back(state);
  bot_started_.push_back(0);
  bot_active_.push_back(0);
  junk_next_.push_back(kNever);
  heavy_next_.push_back(kNever);
  junk_due_.push_back(0);
  heavy_due_.push_back(0);
  return i;
}

void ClientSwarm::finalize() {
  if (finalized_) throw std::logic_error("ClientSwarm: finalize() twice");
  finalized_ = true;
  if (members() > 0) {
    // One walking event starts the whole population: sort members by
    // (start instant, add order) — exactly the order one scheduled closure
    // per member would have fired in — and chain from start to start.
    start_order_.resize(start_at_.size());
    std::iota(start_order_.begin(), start_order_.end(), 0);
    std::stable_sort(start_order_.begin(), start_order_.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return start_at_[static_cast<std::size_t>(a)] <
                              start_at_[static_cast<std::size_t>(b)];
                     });
    loop().schedule_at(start_at_[static_cast<std::size_t>(start_order_[0])],
                       [this] { start_walk(); });
    loop().schedule_after(config_.sweep_dt_s, [this] { sweep(); });
  }
  if (config_.strategy != nullptr && bot_members() > 0) {
    loop().schedule_after(config_.strategy_round_s,
                          [this] { strategy_round(); });
  }
}

void ClientSwarm::start_walk() {
  const double now = loop().now();
  while (start_next_ < start_order_.size()) {
    const std::int32_t i = start_order_[start_next_];
    const double at = start_at_[static_cast<std::size_t>(i)];
    if (at > now) {
      loop().schedule_at(at, [this] { start_walk(); });
      return;
    }
    ++start_next_;
    begin_join(i);
  }
  start_at_ = {};
  start_order_ = {};
}

double ClientSwarm::exp_gap(std::int32_t i, double rate) {
  // Exponential gap off the member's private stream (same inverse-CDF form
  // as util::Rng::exponential, so cadences match the per-object engine in
  // distribution).
  return -std::log1p(-stream_[static_cast<std::size_t>(i)].uniform()) / rate;
}

void ClientSwarm::begin_join(std::int32_t i) {
  const auto s = static_cast<std::size_t>(i);
  phase_[s] = kResolving;
  retries_[s] = 0;
  ws_replica_[s] = kInvalidNode;
  flags_[s] &= static_cast<std::uint8_t>(~kHbAwait);
  hb_next_[s] = kNever;
  hb_deadline_[s] = kNever;
  browse_next_[s] = kNever;
  send_from(port_[s], config_.dns, MessageType::kDnsQuery, kDnsMessageBytes,
            DnsQueryPayload{service_id_});
  deadline_[s] = loop().now() + timeout_s(i);
}

void ClientSwarm::request_page(std::int32_t i) {
  const auto s = static_cast<std::size_t>(i);
  phase_[s] = kLoadingPage;
  page_requested_at_[s] = loop().now();
  send_from(port_[s], replica_[s], MessageType::kHttpGet, kHttpRequestBytes,
            HttpGetPayload{ip_[s]});
  deadline_[s] = loop().now() + timeout_s(i);
}

void ClientSwarm::bot_report(std::int32_t i) {
  if (config_.botmaster == kInvalidNode) return;
  const auto s = static_cast<std::size_t>(i);
  send_from(port_[s], config_.botmaster, MessageType::kBotReport,
            kControlMessageBytes, BotReportPayload{replica_[s]});
}

void ClientSwarm::handle_connected(std::int32_t i, bool migrated) {
  const auto s = static_cast<std::size_t>(i);
  const double now = loop().now();
  phase_[s] = kConnected;
  deadline_[s] = kNever;
  ws_replica_[s] = replica_[s];
  flags_[s] &= static_cast<std::uint8_t>(~kHbAwait);
  hb_deadline_[s] = kNever;
  if (!is_bot(i)) {
    hb_next_[s] = config_.heartbeat_s > 0.0 ? now + config_.heartbeat_s
                                            : kNever;
    browse_next_[s] = config_.browse_think_s > 0.0
                          ? now + exp_gap(i, 1.0 / config_.browse_think_s)
                          : kNever;
  }
  if (migrated) {
    flags_[s] &= static_cast<std::uint8_t>(~kMigrating);
    ++stats_.migrations_completed;
    stats_.migration_seconds_sum += now - migration_started_at_[s];
  }
  if (!is_bot(i)) return;

  // ---- bot connect/migrate hooks (mirror PersistentBot) --------------------
  const auto k = static_cast<std::size_t>(i - first_bot_);
  bot_report(i);
  if (migrated) {
    if (config_.strategy != nullptr && config_.strategy->reacts_to_shuffle()) {
      const core::StrategyContext ctx{round_, config_.strategy_replicas};
      const core::Count away =
          config_.strategy->on_shuffled_one(ctx, bot_state_[k]);
      if (away >= 0) bot_active_[k] = 0;  // went dark until the counter drains
    }
    return;
  }
  if (bot_started_[k] != 0) return;  // cadences already running
  bot_started_[k] = 1;
  if (config_.strategy == nullptr || config_.strategy->always_active()) {
    bot_active_[k] = 1;
  }
  // First shot fires at connect (like the per-object ticks), then the
  // sweep drives the cadence.
  if (config_.bot_junk_rate_pps > 0.0) {
    if (bot_active_[k] != 0) {
      send_from(port_[s], replica_[s], MessageType::kJunkPacket,
                kJunkPacketBytes);
      ++stats_.junk_sent;
    }
    junk_next_[k] = now + exp_gap(i, config_.bot_junk_rate_pps);
  }
  if (config_.bot_heavy_interval_s > 0.0) {
    if (bot_active_[k] != 0) {
      send_from(port_[s], replica_[s], MessageType::kHeavyRequest,
                kHttpRequestBytes,
                HeavyRequestPayload{ip_[s], config_.bot_heavy_cpu_seconds});
      ++stats_.heavy_sent;
    }
    heavy_next_[k] = now + config_.bot_heavy_interval_s;
  }
}

void ClientSwarm::handle_timeout(std::int32_t i) {
  const auto s = static_cast<std::size_t>(i);
  ++stats_.timeouts;
  if (++retries_[s] > config_.max_retries) {
    ++stats_.rejoins;
    begin_join(i);
    return;
  }
  switch (phase_[s]) {
    case kResolving:
      send_from(port_[s], config_.dns, MessageType::kDnsQuery,
                kDnsMessageBytes, DnsQueryPayload{service_id_});
      break;
    case kContactingLb:
      send_from(port_[s], lb_[s], MessageType::kClientHello,
                kHttpRequestBytes, ClientHelloPayload{ip_[s]});
      break;
    case kLoadingPage:
      send_from(port_[s], replica_[s], MessageType::kHttpGet,
                kHttpRequestBytes, HttpGetPayload{ip_[s]});
      break;
    case kOpeningWs:
      send_from(port_[s], replica_[s], MessageType::kWsOpen, kWsFrameBytes,
                WsOpenPayload{ip_[s]});
      break;
    default:
      return;
  }
  deadline_[s] = loop().now() + timeout_s(i);
}

void ClientSwarm::on_message(const Message& msg) {
  const std::int32_t i = member_of(msg.dst);
  if (i < 0 || i >= members()) return;
  const auto s = static_cast<std::size_t>(i);
  switch (msg.type) {
    case MessageType::kDnsReply: {
      if (phase_[s] != kResolving) break;
      const auto& reply = payload_as<DnsReplyPayload>(msg);
      lb_[s] = reply.load_balancer;
      phase_[s] = kContactingLb;
      retries_[s] = 0;
      send_from(port_[s], lb_[s], MessageType::kClientHello,
                kHttpRequestBytes, ClientHelloPayload{ip_[s]});
      deadline_[s] = loop().now() + timeout_s(i);
      break;
    }
    case MessageType::kRedirect: {
      if (phase_[s] != kContactingLb) break;
      replica_[s] = payload_as<RedirectPayload>(msg).target_replica;
      retries_[s] = 0;
      request_page(i);
      break;
    }
    case MessageType::kHttpResponse: {
      if (phase_[s] != kLoadingPage || msg.src != replica_[s]) break;
      const double now = loop().now();
      ++stats_.page_loads;
      stats_.page_load_seconds_sum += now - page_requested_at_[s];
      if (stats_.first_page_at < 0.0) stats_.first_page_at = now;
      retries_[s] = 0;
      if (ws_replica_[s] == replica_[s]) {
        // Reload on an already-connected replica: WebSocket still up.
        phase_[s] = kConnected;
        deadline_[s] = kNever;
        if (!is_bot(i) && config_.browse_think_s > 0.0) {
          browse_next_[s] = now + exp_gap(i, 1.0 / config_.browse_think_s);
        }
        break;
      }
      phase_[s] = kOpeningWs;
      send_from(port_[s], replica_[s], MessageType::kWsOpen, kWsFrameBytes,
                WsOpenPayload{ip_[s]});
      deadline_[s] = now + timeout_s(i);
      break;
    }
    case MessageType::kWsOpenAck: {
      if (phase_[s] != kOpeningWs || msg.src != replica_[s]) break;
      handle_connected(i, (flags_[s] & kMigrating) != 0);
      break;
    }
    case MessageType::kWsPong: {
      if (msg.src != ws_replica_[s]) break;
      flags_[s] &= static_cast<std::uint8_t>(~kHbAwait);
      hb_deadline_[s] = kNever;
      hb_next_[s] = config_.heartbeat_s > 0.0 && !is_bot(i)
                        ? loop().now() + config_.heartbeat_s
                        : kNever;
      break;
    }
    case MessageType::kWsPush: {
      const auto& push = payload_as<WsPushPayload>(msg);
      // Duplicate-safe, exactly like ClientAgent: a push to where we are
      // already heading (or connected) is a no-op.
      if (push.new_replica == replica_[s] &&
          ((flags_[s] & kMigrating) != 0 || ws_replica_[s] == replica_[s])) {
        break;
      }
      if ((flags_[s] & kMigrating) == 0) {
        flags_[s] |= kMigrating;
        migration_started_at_[s] = loop().now();
      }
      replica_[s] = push.new_replica;
      retries_[s] = 0;
      request_page(i);
      break;
    }
    default:
      break;
  }
}

// ---- periodic sweep --------------------------------------------------------

void ClientSwarm::scan_member(std::int32_t i, double now) {
  const auto s = static_cast<std::size_t>(i);
  std::uint8_t action = 0;
  const std::uint8_t phase = phase_[s];
  if (deadline_[s] <= now && phase >= kResolving && phase <= kOpeningWs) {
    action |= kActTimeout;
  }
  if (phase == kConnected) {
    if ((flags_[s] & kHbAwait) != 0) {
      if (hb_deadline_[s] <= now) action |= kActHbFail;
    } else if (hb_next_[s] <= now) {
      action |= kActHbPing;
    }
    if (browse_next_[s] <= now) action |= kActBrowse;
  }
  if (is_bot(i)) {
    const auto k = static_cast<std::size_t>(i - first_bot_);
    // Cadence streams keep ticking (and drawing) even while the strategy
    // holds the bot dormant or the connection is down, so enabling a
    // strategy never shifts the timing stream — the per-object contract.
    const bool firing = bot_active_[k] != 0 && phase == kConnected &&
                        replica_[s] != kInvalidNode;
    std::uint16_t junk = 0;
    while (junk_next_[k] <= now) {
      junk_next_[k] += exp_gap(i, config_.bot_junk_rate_pps);
      if (firing && junk < std::numeric_limits<std::uint16_t>::max()) ++junk;
    }
    std::uint16_t heavy = 0;
    while (heavy_next_[k] <= now) {
      heavy_next_[k] += config_.bot_heavy_interval_s;
      if (firing && heavy < std::numeric_limits<std::uint16_t>::max()) {
        ++heavy;
      }
    }
    junk_due_[k] = junk;
    heavy_due_[k] = heavy;
    if (junk > 0 || heavy > 0) action |= kActBot;
  }
  action_[s] = action;
}

void ClientSwarm::emit_actions(double now) {
  const std::int32_t n = members();
  for (std::int32_t i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const std::uint8_t action = action_[s];
    if (action == 0) continue;
    if ((action & kActHbFail) != 0) {
      // Silence on the WebSocket: the replica died without a redirect.
      // Fall back to the pull path through DNS.
      ++stats_.heartbeat_failures;
      ++stats_.rejoins;
      begin_join(i);
    } else if ((action & kActTimeout) != 0) {
      handle_timeout(i);
    } else {
      if ((action & kActHbPing) != 0) {
        send_from(port_[s], ws_replica_[s], MessageType::kWsPing,
                  kWsFrameBytes);
        flags_[s] |= kHbAwait;
        hb_deadline_[s] = now + timeout_s(i);
        hb_next_[s] = kNever;
      }
      if ((action & kActBrowse) != 0) {
        browse_next_[s] = kNever;  // re-armed when the reload completes
        retries_[s] = 0;
        request_page(i);
      }
    }
    if ((action & kActBot) != 0 && phase_[s] == kConnected &&
        replica_[s] != kInvalidNode) {
      const auto k = static_cast<std::size_t>(i - first_bot_);
      for (std::uint16_t j = 0; j < junk_due_[k]; ++j) {
        send_from(port_[s], replica_[s], MessageType::kJunkPacket,
                  kJunkPacketBytes);
        ++stats_.junk_sent;
      }
      for (std::uint16_t j = 0; j < heavy_due_[k]; ++j) {
        send_from(port_[s], replica_[s], MessageType::kHeavyRequest,
                  kHttpRequestBytes,
                  HeavyRequestPayload{ip_[s], config_.bot_heavy_cpu_seconds});
        ++stats_.heavy_sent;
      }
    }
  }
}

void ClientSwarm::sweep() {
  const double now = loop().now();
  const std::int32_t n = members();
  if (config_.shard_threads > 1 && n >= kShardMinMembers) {
    // Parallel scan: every draw comes from the member's own stream and every
    // write lands in the member's own slots, so chunk boundaries (fixed by
    // the pool's grain contract) cannot change the result.
    auto& pool = util::ThreadPool::shared();
    auto job = pool.submit(
        0, n,
        [this, now](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            scan_member(static_cast<std::int32_t>(i), now);
          }
        },
        kShardGrain, static_cast<std::size_t>(config_.shard_threads));
    pool.wait(job);
  } else {
    for (std::int32_t i = 0; i < n; ++i) scan_member(i, now);
  }
  // Serial emission in member-index order: the only pass that touches the
  // network, stats, or phases — the event loop stays single-threaded.
  emit_actions(now);
  loop().schedule_after(config_.sweep_dt_s, [this] { sweep(); });
}

void ClientSwarm::strategy_round() {
  const core::StrategyContext ctx{++round_, config_.strategy_replicas};
  const std::int32_t n = bot_members();
  const std::span<core::BotState> bots(bot_state_);
  const std::span<const std::uint8_t> present(bot_started_);
  const std::span<std::uint8_t> active(bot_active_);
  auto run = [&](std::int64_t lo, std::int64_t hi) {
    const auto b = static_cast<std::size_t>(lo);
    const auto len = static_cast<std::size_t>(hi - lo);
    config_.strategy->decide(ctx, bots.subspan(b, len),
                             present.subspan(b, len), active.subspan(b, len));
  };
  if (config_.shard_threads > 1 && n >= kShardMinMembers) {
    auto& pool = util::ThreadPool::shared();
    auto job = pool.submit(0, n, run, kShardGrain,
                           static_cast<std::size_t>(config_.shard_threads));
    pool.wait(job);
  } else if (n > 0) {
    run(0, n);
  }
  loop().schedule_after(config_.strategy_round_s, [this] { strategy_round(); });
}

std::int64_t ClientSwarm::clients_connected() const {
  std::int64_t count = 0;
  for (std::int32_t i = 0; i < first_bot_; ++i) {
    if (phase_[static_cast<std::size_t>(i)] == kConnected) ++count;
  }
  return count;
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/client_agent.h"

#include "util/logging.h"

namespace shuffledef::cloudsim {

ClientAgent::ClientAgent(World& world, std::string name, ClientConfig config)
    : Node(world, std::move(name)), config_(std::move(config)) {
  if (config_.ip.empty()) config_.ip = this->name();
}

void ClientAgent::on_start() {
  service_id_ = world().intern_service(config_.service);
  ip_id_ = world().intern_ip(config_.ip);
  world().register_ip(ip_id_, id());
  loop().schedule_after(config_.start_time_s, [this] { start_join(); });
}

void ClientAgent::start_join() {
  phase_ = Phase::kResolving;
  ++generation_;
  retries_ = 0;
  ws_replica_ = kInvalidNode;  // any previous WebSocket is considered dead
  ++hb_epoch_;                 // and its heartbeat chain with it
  send(config_.dns, MessageType::kDnsQuery, kDnsMessageBytes,
       DnsQueryPayload{service_id_});
  arm_timeout();
}

void ClientAgent::request_page() {
  phase_ = Phase::kLoadingPage;
  ++generation_;
  page_requested_at_ = loop().now();
  send(replica_, MessageType::kHttpGet, kHttpRequestBytes,
       HttpGetPayload{ip_id_});
  arm_timeout();
}

void ClientAgent::arm_timeout() {
  const std::uint64_t gen = generation_;
  loop().schedule_after(config_.request_timeout_s,
                        [this, gen] { handle_timeout(gen); });
}

void ClientAgent::schedule_browse() {
  if (config_.browse_think_s <= 0.0) return;
  const std::uint64_t gen = generation_;
  loop().schedule_after(rng().exponential(1.0 / config_.browse_think_s),
                        [this, gen] {
                          // Only browse if nothing intervened (no shuffle,
                          // timeout, or earlier reload in flight).
                          if (gen != generation_ || phase_ != Phase::kConnected) {
                            return;
                          }
                          retries_ = 0;
                          request_page();
                        });
}

void ClientAgent::schedule_heartbeat() {
  if (config_.heartbeat_s <= 0.0 || ws_replica_ == kInvalidNode) return;
  const std::uint64_t epoch = hb_epoch_;
  loop().schedule_after(config_.heartbeat_s, [this, epoch] {
    if (epoch != hb_epoch_ || ws_replica_ == kInvalidNode) return;
    const std::uint64_t expect = ++ping_seq_;
    send(ws_replica_, MessageType::kWsPing, kWsFrameBytes);
    loop().schedule_after(config_.request_timeout_s, [this, epoch, expect] {
      if (epoch != hb_epoch_) return;
      if (pong_seq_ >= expect) {
        schedule_heartbeat();  // alive: keep watching
        return;
      }
      // Silence on the WebSocket: the replica died without pushing a
      // redirect (instance failure).  Fall back to the pull path: rejoin
      // through DNS, where the balancer routes a live replica.
      ++stats_.heartbeat_failures;
      ++stats_.rejoins;
      start_join();
    });
  });
}

void ClientAgent::handle_timeout(std::uint64_t generation) {
  if (generation != generation_ || phase_ == Phase::kConnected ||
      phase_ == Phase::kIdle) {
    return;  // the awaited reply arrived, or nothing is pending
  }
  ++stats_.timeouts;
  stats_.timeout_at.push_back(loop().now());
  if (++retries_ > config_.max_retries) {
    // Too many failures on this path: rejoin from scratch via DNS (the
    // load balancer's sticky record will route a live replica).
    ++stats_.rejoins;
    start_join();
    return;
  }
  ++generation_;
  switch (phase_) {
    case Phase::kResolving:
      send(config_.dns, MessageType::kDnsQuery, kDnsMessageBytes,
           DnsQueryPayload{service_id_});
      break;
    case Phase::kContactingLb:
      send(lb_, MessageType::kClientHello, kHttpRequestBytes,
           ClientHelloPayload{ip_id_});
      break;
    case Phase::kLoadingPage:
      send(replica_, MessageType::kHttpGet, kHttpRequestBytes,
           HttpGetPayload{ip_id_});
      break;
    case Phase::kOpeningWs:
      send(replica_, MessageType::kWsOpen, kWsFrameBytes,
           WsOpenPayload{ip_id_});
      break;
    case Phase::kIdle:
    case Phase::kConnected:
      return;
  }
  arm_timeout();
}

void ClientAgent::on_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::kDnsReply: {
      if (phase_ != Phase::kResolving) break;
      const auto& reply = payload_as<DnsReplyPayload>(msg);
      lb_ = reply.load_balancer;
      phase_ = Phase::kContactingLb;
      ++generation_;
      retries_ = 0;
      send(lb_, MessageType::kClientHello, kHttpRequestBytes,
           ClientHelloPayload{ip_id_});
      arm_timeout();
      break;
    }
    case MessageType::kRedirect: {
      if (phase_ != Phase::kContactingLb) break;
      const auto& redirect = payload_as<RedirectPayload>(msg);
      replica_ = redirect.target_replica;
      retries_ = 0;
      request_page();
      break;
    }
    case MessageType::kHttpResponse: {
      if (phase_ != Phase::kLoadingPage || msg.src != replica_) break;
      stats_.page_loads.push_back(
          PageLoadRecord{page_requested_at_, loop().now()});
      if (stats_.first_page_at < 0.0) stats_.first_page_at = loop().now();
      ++generation_;
      retries_ = 0;
      if (ws_replica_ == replica_) {
        // Reload on an already-connected replica (browsing workload):
        // the WebSocket is still up, no handshake needed.
        phase_ = Phase::kConnected;
        schedule_browse();
        break;
      }
      phase_ = Phase::kOpeningWs;
      send(replica_, MessageType::kWsOpen, kWsFrameBytes,
           WsOpenPayload{ip_id_});
      arm_timeout();
      break;
    }
    case MessageType::kWsOpenAck: {
      if (phase_ != Phase::kOpeningWs || msg.src != replica_) break;
      phase_ = Phase::kConnected;
      ++generation_;
      ws_replica_ = replica_;
      ++hb_epoch_;  // kill any stale heartbeat chain, start a fresh one
      schedule_heartbeat();
      if (migrating_) {
        migrating_ = false;
        stats_.migrations.push_back(
            MigrationRecord{migration_started_at_, loop().now()});
        on_migrated(replica_);
      } else {
        on_connected();
      }
      schedule_browse();
      break;
    }
    case MessageType::kWsPong: {
      if (msg.src == ws_replica_) pong_seq_ = ping_seq_;
      break;
    }
    case MessageType::kWsPush: {
      // Replica-initiated shuffle redirect: reload from the new location.
      const auto& push = payload_as<WsPushPayload>(msg);
      // Duplicate-safe: re-sent shuffle commands and injected network
      // duplicates can deliver the same push twice.  If we are already
      // heading to (or connected at) that replica, the extra push is a
      // no-op instead of a spurious reload.
      if (push.new_replica == replica_ &&
          (migrating_ || ws_replica_ == replica_)) {
        break;
      }
      if (!migrating_) {
        migrating_ = true;
        migration_started_at_ = loop().now();
      }
      replica_ = push.new_replica;
      retries_ = 0;
      request_page();
      break;
    }
    default:
      break;
  }
}

}  // namespace shuffledef::cloudsim

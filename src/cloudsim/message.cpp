#include "cloudsim/message.h"

namespace shuffledef::cloudsim {

const char* message_type_name(MessageType type) noexcept {
  switch (type) {
    case MessageType::kDnsQuery: return "dns.query";
    case MessageType::kDnsReply: return "dns.reply";
    case MessageType::kClientHello: return "lb.hello";
    case MessageType::kRedirect: return "redirect";
    case MessageType::kWhitelistAdd: return "lb.whitelist_add";
    case MessageType::kWhitelistBatch: return "lb.whitelist_batch";
    case MessageType::kHttpGet: return "http.get";
    case MessageType::kHttpResponse: return "http.response";
    case MessageType::kWsOpen: return "ws.open";
    case MessageType::kWsOpenAck: return "ws.open_ack";
    case MessageType::kWsPush: return "ws.push";
    case MessageType::kWsPing: return "ws.ping";
    case MessageType::kWsPong: return "ws.pong";
    case MessageType::kJunkPacket: return "attack.junk";
    case MessageType::kHeavyRequest: return "attack.heavy";
    case MessageType::kAttackReport: return "coord.attack_report";
    case MessageType::kQosReport: return "coord.qos_report";
    case MessageType::kShuffleCommand: return "coord.shuffle";
    case MessageType::kDecommission: return "coord.decommission";
    case MessageType::kProvisionDone: return "coord.provision_done";
    case MessageType::kBotReport: return "bot.report";
    case MessageType::kFloodCommand: return "bot.flood";
  }
  return "?";
}

bool is_priority_type(MessageType type) noexcept {
  switch (type) {
    case MessageType::kRedirect:
    case MessageType::kWhitelistAdd:
    case MessageType::kWhitelistBatch:
    case MessageType::kWsOpen:     // tiny WS control frames: in reality TCP
    case MessageType::kWsOpenAck:  // fair-sharing never parks a 128-byte
    case MessageType::kWsPing:     // handshake or keepalive behind minutes
    case MessageType::kWsPong:     // of bulk data
    case MessageType::kWsPush:
    case MessageType::kAttackReport:
    case MessageType::kQosReport:
    case MessageType::kShuffleCommand:
    case MessageType::kDecommission:
    case MessageType::kProvisionDone:
      return true;
    default:
      return false;
  }
}

}  // namespace shuffledef::cloudsim

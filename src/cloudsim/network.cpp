#include "cloudsim/network.h"

#include <algorithm>
#include <stdexcept>

#include "cloudsim/fault.h"
#include "cloudsim/node.h"

namespace shuffledef::cloudsim {

Network::Network(EventLoop& loop, NetworkConfig config)
    : loop_(loop), config_(config) {
  pod_walk_kind_ = loop_.register_pod_handler(
      [](void* ctx, std::uint32_t lane, std::uint32_t gen) {
        static_cast<Network*>(ctx)->walk_lane(lane, gen);
      },
      this);
}

void Network::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.sends = registry->counter(kMetricNetSends);
  metrics_.delivered = registry->counter(kMetricNetDelivered);
  metrics_.dropped_egress = registry->counter(kMetricNetDroppedEgress);
  metrics_.dropped_ingress = registry->counter(kMetricNetDroppedIngress);
  metrics_.dropped_detached = registry->counter(kMetricNetDroppedDetached);
  metrics_.dropped_faulted = registry->counter(kMetricNetDroppedFaulted);
  metrics_.duplicated = registry->counter(kMetricNetDuplicated);
  metrics_.bytes_delivered = registry->counter(kMetricNetBytesDelivered);
  metrics_.in_flight = registry->gauge(kMetricNetInFlight);
}

NodeId Network::attach(Node* node, NicConfig nic) {
  if (node == nullptr) throw std::invalid_argument("Network: null node");
  if (nic.egress_bps <= 0 || nic.ingress_bps <= 0 || nic.base_latency_s < 0 ||
      nic.max_queue_s <= 0 || nic.control_share <= 0 ||
      nic.control_share >= 1) {
    throw std::invalid_argument("Network: invalid NicConfig");
  }
  Port port;
  port.node = node;
  port.nic = nic;
  port.attached = true;
  ports_.push_back(port);
  return static_cast<NodeId>(ports_.size() - 1);
}

void Network::detach(NodeId id) { port_at(id).attached = false; }

bool Network::is_attached(NodeId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < ports_.size() &&
         ports_[static_cast<std::size_t>(id)].attached;
}

Network::Port& Network::port_at(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= ports_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return ports_[static_cast<std::size_t>(id)];
}

const Network::Port& Network::port_at(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= ports_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return ports_[static_cast<std::size_t>(id)];
}

const NicConfig& Network::nic(NodeId id) const { return port_at(id).nic; }

double Network::egress_backlog_s(NodeId id) const {
  const Port& p = port_at(id);
  return std::max(0.0, p.egress_data.busy_until - loop_.now());
}

double Network::propagation_s(const Port& src, const Port& dst) const {
  const double domain_extra = src.nic.domain == dst.nic.domain
                                  ? config_.intra_domain_extra_s
                                  : config_.inter_domain_extra_s;
  return src.nic.base_latency_s + dst.nic.base_latency_s + domain_extra;
}

void Network::resolve(const Message& msg, NetTraceEvent::Outcome outcome) {
  resolve_at(loop_.now(), msg, outcome);
}

void Network::resolve_at(double t, const Message& msg,
                         NetTraceEvent::Outcome outcome) {
  if (trace_enabled_) {
    trace_.push_back(
        NetTraceEvent{t, msg.src, msg.dst, msg.type, msg.size_bytes, outcome});
  }
}

bool Network::admit(Message& msg) {
  ++stats_.sends;
  metrics_.sends.inc();
  Port& src = port_at(msg.src);
  if (!src.attached) {
    ++stats_.dropped_detached;
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return false;
  }
  if (msg.dst < 0 || static_cast<std::size_t>(msg.dst) >= ports_.size()) {
    ++stats_.dropped_detached;  // address never existed (stale reference)
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return false;
  }

  if (fault_ != nullptr) {
    switch (fault_->on_send(msg, is_priority_type(msg.type), loop_.now())) {
      case FaultAction::kDrop:
        ++stats_.dropped_faulted;
        metrics_.dropped_faulted.inc();
        resolve(msg, NetTraceEvent::Outcome::kDroppedFaulted);
        return false;
      case FaultAction::kDuplicate: {
        // The original delivers normally below; an extra copy re-enters the
        // sender's NIC after a small delay.  The copy skips the fault gate
        // (no duplicate chains) and resolves like any other message.
        ++stats_.duplicated;
        ++stats_.in_flight;
        metrics_.duplicated.inc();
        metrics_.in_flight.add(1);
        resolve(msg, NetTraceEvent::Outcome::kDuplicated);
        Message copy = msg;
        const double delay = fault_->config().dup_extra_delay_s;
        if (pooled_) {
          const std::uint32_t slot = acquire(std::move(copy));
          loop_.schedule_after(delay, [this, slot] { dispatch_pooled(slot); });
        } else {
          loop_.schedule_after(delay,
                               [this, copy = std::move(copy)]() mutable {
                                 transmit(std::move(copy));
                               });
        }
        break;
      }
      case FaultAction::kDeliver:
        break;
    }
  }

  ++stats_.in_flight;
  metrics_.in_flight.add(1);
  return true;
}

void Network::send(Message msg) {
  if (!admit(msg)) return;
  if (pooled_) {
    dispatch_pooled(acquire(std::move(msg)));
  } else {
    transmit(std::move(msg));
  }
}

void Network::send_batch(NodeId src, MessageType type, std::int64_t size_bytes,
                         std::vector<BatchItem> items) {
  // Identical to a loop of send() calls by construction; the per-lane
  // walkers are what amortize the fan-out (each receiving lane drains its
  // span of arrivals with one scheduled event).
  for (auto& item : items) {
    send(Message{src, item.dst, type, size_bytes, std::move(item.payload)});
  }
}

// ---- pooled engine ---------------------------------------------------------

std::uint32_t Network::acquire(Message&& msg) {
  if (free_slots_.empty()) {
    slots_.push_back(std::move(msg));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[static_cast<std::size_t>(slot)] = std::move(msg);
  return slot;
}

void Network::release(std::uint32_t slot) {
  slots_[static_cast<std::size_t>(slot)].payload = {};
  free_slots_.push_back(slot);
}

double Network::egress_admit(Message& msg) {
  Port& src = port_at(msg.src);
  if (!src.attached) {
    // A duplicated copy can outlive its sender's NIC.
    --stats_.in_flight;
    ++stats_.dropped_detached;
    metrics_.in_flight.add(-1);
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return -1.0;
  }
  Port& dst = port_at(msg.dst);
  const bool priority = is_priority_type(msg.type);
  const double now = loop_.now();
  Lane& out_lane = priority ? src.egress_ctrl : src.egress_data;
  const double out_bps = priority
                             ? src.nic.egress_bps * src.nic.control_share
                             : src.nic.egress_bps * (1.0 - src.nic.control_share);
  const double out_backlog = std::max(0.0, out_lane.busy_until - now);
  if (out_backlog > src.nic.max_queue_s) {
    --stats_.in_flight;
    ++stats_.dropped_egress;
    metrics_.in_flight.add(-1);
    metrics_.dropped_egress.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedEgress);
    return -1.0;
  }
  const double out_ser = static_cast<double>(msg.size_bytes) * 8.0 / out_bps;
  const double departs = std::max(now, out_lane.busy_until) + out_ser;
  out_lane.busy_until = departs;
  return departs + propagation_s(src, dst);
}

void Network::dispatch_pooled(std::uint32_t slot) {
  if (!batch_enabled_) {
    transmit_pooled(slot);
    return;
  }
  const double arrives = egress_admit(slots_[static_cast<std::size_t>(slot)]);
  if (arrives < 0) {
    release(slot);
    return;
  }
  ingress_enqueue(slot, arrives);
}

void Network::transmit_pooled(std::uint32_t slot) {
  const double arrives = egress_admit(slots_[static_cast<std::size_t>(slot)]);
  if (arrives < 0) {
    release(slot);
    return;
  }
  loop_.schedule_at(arrives, [this, slot] { arrive_pooled(slot); });
}

// ---- per-lane delivery walkers ---------------------------------------------
//
// One IngressQueue per (port, priority) lane.  Arrivals enqueue into the
// lane's pending heap at send time; fates (detached / tail-drop / delivery
// instant) are sealed strictly in (arrival, send-order) sequence with the
// lane's busy horizon as of the arrival instant — exactly the values the
// per-closure engine computes — but lazily, at walker firings.  The walker
// is armed at the lane's next delivery instant: when the head's predicted
// instant holds (the common case on quiet lanes), one POD event finalizes
// and delivers it in a single pop.  Predictions can only go stale upward
// (busy horizons never shrink), so a walker never fires after the true
// instant — a stale early firing just re-arms.  Drops are recorded with
// the arrival timestamp (resolve_at), matching the per-closure engine;
// only the position in the trace log shifts.

void Network::ingress_enqueue(std::uint32_t slot, double arr) {
  const Message& msg = slots_[static_cast<std::size_t>(slot)];
  const auto lane = static_cast<std::size_t>(msg.dst) * 2 +
                    (is_priority_type(msg.type) ? 1 : 0);
  if (lane >= ingress_.size()) ingress_.resize(ports_.size() * 2);
  IngressQueue& q = ingress_[lane];
  q.pending.push_back(Pending{arr, arrival_order_++, slot});
  std::push_heap(q.pending.begin(), q.pending.end(), PendingLater{});
  arm_lane(static_cast<std::uint32_t>(lane));
}

void Network::finalize_arrival(std::uint32_t lane, const Pending& p,
                               double now) {
  Message& msg = slots_[static_cast<std::size_t>(p.slot)];
  Port& d = ports_[static_cast<std::size_t>(msg.dst)];
  if (!d.attached) {
    --stats_.in_flight;
    ++stats_.dropped_detached;
    metrics_.in_flight.add(-1);
    metrics_.dropped_detached.inc();
    resolve_at(p.arr, msg, NetTraceEvent::Outcome::kDroppedDetached);
    release(p.slot);
    return;
  }
  const bool priority = (lane & 1u) != 0;
  Lane& in_lane = priority ? d.ingress_ctrl : d.ingress_data;
  const double in_bps = priority
                            ? d.nic.ingress_bps * d.nic.control_share
                            : d.nic.ingress_bps * (1.0 - d.nic.control_share);
  const double in_backlog = std::max(0.0, in_lane.busy_until - p.arr);
  if (in_backlog > d.nic.max_queue_s) {
    --stats_.in_flight;
    ++stats_.dropped_ingress;
    metrics_.in_flight.add(-1);
    metrics_.dropped_ingress.inc();
    resolve_at(p.arr, msg, NetTraceEvent::Outcome::kDroppedIngress);
    release(p.slot);
    return;
  }
  const double in_ser = static_cast<double>(msg.size_bytes) * 8.0 / in_bps;
  const double done = std::max(p.arr, in_lane.busy_until) + in_ser;
  in_lane.busy_until = done;
  if (done <= now) {
    // The armed prediction held exactly: finalize and deliver in one pop.
    deliver_pooled(p.slot);
  } else {
    ingress_[static_cast<std::size_t>(lane)].ready.push_back(
        Ready{done, p.slot});
  }
}

void Network::walk_lane(std::uint32_t lane, std::uint32_t gen) {
  if (ingress_[static_cast<std::size_t>(lane)].gen != gen) return;  // stale
  const double now = loop_.now();
  // Park armed_at at `now` for the duration: re-entrant sends from
  // on_message (whose arrivals are strictly in the future) must not arm a
  // second event — the re-arm at the end covers them.
  ingress_[static_cast<std::size_t>(lane)].armed_at = now;
  // Deliver matured finalized messages (done times are monotone per lane).
  // Re-fetch the queue every iteration: on_message may send, which can
  // grow ingress_ (new ports) or this lane's own vectors.
  for (;;) {
    IngressQueue& q = ingress_[static_cast<std::size_t>(lane)];
    if (q.ready_head >= q.ready.size() || q.ready[q.ready_head].done > now) {
      break;
    }
    const std::uint32_t slot = q.ready[q.ready_head].slot;
    ++q.ready_head;
    deliver_pooled(slot);
  }
  // Seal matured arrivals in (arr, order) sequence.
  for (;;) {
    IngressQueue& q = ingress_[static_cast<std::size_t>(lane)];
    if (q.pending.empty() || q.pending.front().arr > now) break;
    std::pop_heap(q.pending.begin(), q.pending.end(), PendingLater{});
    const Pending p = q.pending.back();
    q.pending.pop_back();
    finalize_arrival(lane, p, now);  // may deliver inline (done == now)
  }
  IngressQueue& q = ingress_[static_cast<std::size_t>(lane)];
  if (q.ready_head >= q.ready.size()) {
    q.ready.clear();
    q.ready_head = 0;
  } else if (q.ready_head > 1024 && q.ready_head * 2 > q.ready.size()) {
    q.ready.erase(q.ready.begin(),
                  q.ready.begin() + static_cast<std::ptrdiff_t>(q.ready_head));
    q.ready_head = 0;
  }
  q.armed_at = -1.0;
  arm_lane(lane);
}

void Network::arm_lane(std::uint32_t lane) {
  IngressQueue& q = ingress_[static_cast<std::size_t>(lane)];
  double next = -1.0;
  if (q.ready_head < q.ready.size()) {
    // Finalized deliveries always precede the pending head's instant (done
    // times are the lane's busy chain).
    next = q.ready[q.ready_head].done;
  } else if (!q.pending.empty()) {
    const Pending& head = q.pending.front();
    const Message& msg = slots_[static_cast<std::size_t>(head.slot)];
    const Port& d = ports_[static_cast<std::size_t>(msg.dst)];
    const bool priority = (lane & 1u) != 0;
    const double in_bps =
        priority ? d.nic.ingress_bps * d.nic.control_share
                 : d.nic.ingress_bps * (1.0 - d.nic.control_share);
    const double busy =
        (priority ? d.ingress_ctrl : d.ingress_data).busy_until;
    next = std::max(head.arr, busy) +
           static_cast<double>(msg.size_bytes) * 8.0 / in_bps;
  }
  if (next < 0.0) {
    q.armed_at = -1.0;
    return;
  }
  // The live event at or before `next` will re-arm when it fires; only
  // schedule when nothing fires early enough.  Predictions grow stale
  // upward only (busy horizons never shrink), so an early firing is safe
  // (it re-computes and re-arms) and a too-late firing cannot happen.
  if (q.armed_at >= 0.0 && q.armed_at <= next) return;
  ++q.gen;  // supersede any later-firing event
  q.armed_at = next;
  loop_.schedule_pod_at(next, pod_walk_kind_, lane, q.gen);
}

void Network::arrive_pooled(std::uint32_t slot) {
  Message& msg = slots_[static_cast<std::size_t>(slot)];
  Port& d = ports_[static_cast<std::size_t>(msg.dst)];
  if (!d.attached) {
    --stats_.in_flight;
    ++stats_.dropped_detached;
    metrics_.in_flight.add(-1);
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    release(slot);
    return;
  }
  const bool priority = is_priority_type(msg.type);
  const double now = loop_.now();
  Lane& in_lane = priority ? d.ingress_ctrl : d.ingress_data;
  const double in_bps = priority
                            ? d.nic.ingress_bps * d.nic.control_share
                            : d.nic.ingress_bps * (1.0 - d.nic.control_share);
  const double in_backlog = std::max(0.0, in_lane.busy_until - now);
  if (in_backlog > d.nic.max_queue_s) {
    --stats_.in_flight;
    ++stats_.dropped_ingress;
    metrics_.in_flight.add(-1);
    metrics_.dropped_ingress.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedIngress);
    release(slot);
    return;
  }
  const double in_ser = static_cast<double>(msg.size_bytes) * 8.0 / in_bps;
  const double done = std::max(now, in_lane.busy_until) + in_ser;
  in_lane.busy_until = done;
  loop_.schedule_at(done, [this, slot] { deliver_pooled(slot); });
}

void Network::deliver_pooled(std::uint32_t slot) {
  // Move out before running the receiver: on_message may send, and a send
  // can grow the arena, invalidating references into slots_.
  Message msg = std::move(slots_[static_cast<std::size_t>(slot)]);
  release(slot);
  Port& d = ports_[static_cast<std::size_t>(msg.dst)];
  --stats_.in_flight;
  metrics_.in_flight.add(-1);
  if (!d.attached) {
    ++stats_.dropped_detached;
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += msg.size_bytes;
  metrics_.delivered.inc();
  metrics_.bytes_delivered.inc(static_cast<std::uint64_t>(msg.size_bytes));
  resolve(msg, NetTraceEvent::Outcome::kDelivered);
  d.node->on_message(msg);
}

// ---- legacy engine ---------------------------------------------------------

void Network::transmit(Message msg) {
  Port& src = port_at(msg.src);
  if (!src.attached) {
    // A duplicated copy can outlive its sender's NIC.
    --stats_.in_flight;
    ++stats_.dropped_detached;
    metrics_.in_flight.add(-1);
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return;
  }
  Port& dst = port_at(msg.dst);

  const bool priority = is_priority_type(msg.type);
  const double now = loop_.now();

  // --- egress serialization -------------------------------------------------
  Lane& out_lane = priority ? src.egress_ctrl : src.egress_data;
  const double out_bps = priority ? src.nic.egress_bps * src.nic.control_share
                                  : src.nic.egress_bps * (1.0 - src.nic.control_share);
  const double out_backlog = std::max(0.0, out_lane.busy_until - now);
  if (out_backlog > src.nic.max_queue_s) {
    --stats_.in_flight;
    ++stats_.dropped_egress;
    metrics_.in_flight.add(-1);
    metrics_.dropped_egress.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedEgress);
    return;
  }
  const double out_ser = static_cast<double>(msg.size_bytes) * 8.0 / out_bps;
  const double departs = std::max(now, out_lane.busy_until) + out_ser;
  out_lane.busy_until = departs;

  const double arrives_at_nic = departs + propagation_s(src, dst);

  // --- ingress serialization (evaluated on arrival at the receiver NIC) -----
  const NodeId dst_id = msg.dst;
  loop_.schedule_at(arrives_at_nic, [this, dst_id, priority,
                                     msg = std::move(msg)]() mutable {
    Port& d = ports_[static_cast<std::size_t>(dst_id)];
    if (!d.attached) {
      --stats_.in_flight;
      ++stats_.dropped_detached;
      metrics_.in_flight.add(-1);
      metrics_.dropped_detached.inc();
      resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
      return;
    }
    const double now2 = loop_.now();
    Lane& in_lane = priority ? d.ingress_ctrl : d.ingress_data;
    const double in_bps = priority
                              ? d.nic.ingress_bps * d.nic.control_share
                              : d.nic.ingress_bps * (1.0 - d.nic.control_share);
    const double in_backlog = std::max(0.0, in_lane.busy_until - now2);
    if (in_backlog > d.nic.max_queue_s) {
      --stats_.in_flight;
      ++stats_.dropped_ingress;
      metrics_.in_flight.add(-1);
      metrics_.dropped_ingress.inc();
      resolve(msg, NetTraceEvent::Outcome::kDroppedIngress);
      return;
    }
    const double in_ser = static_cast<double>(msg.size_bytes) * 8.0 / in_bps;
    const double done = std::max(now2, in_lane.busy_until) + in_ser;
    in_lane.busy_until = done;
    loop_.schedule_at(done, [this, dst_id, msg = std::move(msg)]() mutable {
      Port& d2 = ports_[static_cast<std::size_t>(dst_id)];
      --stats_.in_flight;
      metrics_.in_flight.add(-1);
      if (!d2.attached) {
        ++stats_.dropped_detached;
        metrics_.dropped_detached.inc();
        resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
        return;
      }
      ++stats_.delivered;
      stats_.bytes_delivered += msg.size_bytes;
      metrics_.delivered.inc();
      metrics_.bytes_delivered.inc(static_cast<std::uint64_t>(msg.size_bytes));
      resolve(msg, NetTraceEvent::Outcome::kDelivered);
      d2.node->on_message(msg);
    });
  });
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/network.h"

#include <algorithm>
#include <stdexcept>

#include "cloudsim/fault.h"
#include "cloudsim/node.h"

namespace shuffledef::cloudsim {

Network::Network(EventLoop& loop, NetworkConfig config)
    : loop_(loop), config_(config) {}

void Network::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.sends = registry->counter(kMetricNetSends);
  metrics_.delivered = registry->counter(kMetricNetDelivered);
  metrics_.dropped_egress = registry->counter(kMetricNetDroppedEgress);
  metrics_.dropped_ingress = registry->counter(kMetricNetDroppedIngress);
  metrics_.dropped_detached = registry->counter(kMetricNetDroppedDetached);
  metrics_.dropped_faulted = registry->counter(kMetricNetDroppedFaulted);
  metrics_.duplicated = registry->counter(kMetricNetDuplicated);
  metrics_.bytes_delivered = registry->counter(kMetricNetBytesDelivered);
  metrics_.in_flight = registry->gauge(kMetricNetInFlight);
}

NodeId Network::attach(Node* node, NicConfig nic) {
  if (node == nullptr) throw std::invalid_argument("Network: null node");
  if (nic.egress_bps <= 0 || nic.ingress_bps <= 0 || nic.base_latency_s < 0 ||
      nic.max_queue_s <= 0 || nic.control_share <= 0 ||
      nic.control_share >= 1) {
    throw std::invalid_argument("Network: invalid NicConfig");
  }
  Port port;
  port.node = node;
  port.nic = nic;
  port.attached = true;
  ports_.push_back(port);
  return static_cast<NodeId>(ports_.size() - 1);
}

void Network::detach(NodeId id) { port_at(id).attached = false; }

bool Network::is_attached(NodeId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < ports_.size() &&
         ports_[static_cast<std::size_t>(id)].attached;
}

Network::Port& Network::port_at(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= ports_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return ports_[static_cast<std::size_t>(id)];
}

const Network::Port& Network::port_at(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= ports_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return ports_[static_cast<std::size_t>(id)];
}

const NicConfig& Network::nic(NodeId id) const { return port_at(id).nic; }

double Network::egress_backlog_s(NodeId id) const {
  const Port& p = port_at(id);
  return std::max(0.0, p.egress_data.busy_until - loop_.now());
}

double Network::propagation_s(const Port& src, const Port& dst) const {
  const double domain_extra = src.nic.domain == dst.nic.domain
                                  ? config_.intra_domain_extra_s
                                  : config_.inter_domain_extra_s;
  return src.nic.base_latency_s + dst.nic.base_latency_s + domain_extra;
}

void Network::resolve(const Message& msg, NetTraceEvent::Outcome outcome) {
  if (trace_enabled_) {
    trace_.push_back(NetTraceEvent{loop_.now(), msg.src, msg.dst, msg.type,
                                   msg.size_bytes, outcome});
  }
}

void Network::send(Message msg) {
  ++stats_.sends;
  metrics_.sends.inc();
  Port& src = port_at(msg.src);
  if (!src.attached) {
    ++stats_.dropped_detached;
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return;
  }
  if (msg.dst < 0 || static_cast<std::size_t>(msg.dst) >= ports_.size()) {
    ++stats_.dropped_detached;  // address never existed (stale reference)
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return;
  }

  if (fault_ != nullptr) {
    switch (fault_->on_send(msg, is_priority_type(msg.type), loop_.now())) {
      case FaultAction::kDrop:
        ++stats_.dropped_faulted;
        metrics_.dropped_faulted.inc();
        resolve(msg, NetTraceEvent::Outcome::kDroppedFaulted);
        return;
      case FaultAction::kDuplicate: {
        // The original delivers normally below; an extra copy re-enters the
        // sender's NIC after a small delay.  The copy skips the fault gate
        // (no duplicate chains) and resolves like any other message.
        ++stats_.duplicated;
        ++stats_.in_flight;
        metrics_.duplicated.inc();
        metrics_.in_flight.add(1);
        resolve(msg, NetTraceEvent::Outcome::kDuplicated);
        Message copy = msg;
        loop_.schedule_after(
            fault_->config().dup_extra_delay_s,
            [this, copy = std::move(copy)]() mutable {
              transmit(std::move(copy));
            });
        break;
      }
      case FaultAction::kDeliver:
        break;
    }
  }

  ++stats_.in_flight;
  metrics_.in_flight.add(1);
  transmit(std::move(msg));
}

void Network::transmit(Message msg) {
  Port& src = port_at(msg.src);
  if (!src.attached) {
    // A duplicated copy can outlive its sender's NIC.
    --stats_.in_flight;
    ++stats_.dropped_detached;
    metrics_.in_flight.add(-1);
    metrics_.dropped_detached.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
    return;
  }
  Port& dst = port_at(msg.dst);

  const bool priority = is_priority_type(msg.type);
  const double now = loop_.now();

  // --- egress serialization -------------------------------------------------
  Lane& out_lane = priority ? src.egress_ctrl : src.egress_data;
  const double out_bps = priority ? src.nic.egress_bps * src.nic.control_share
                                  : src.nic.egress_bps * (1.0 - src.nic.control_share);
  const double out_backlog = std::max(0.0, out_lane.busy_until - now);
  if (out_backlog > src.nic.max_queue_s) {
    --stats_.in_flight;
    ++stats_.dropped_egress;
    metrics_.in_flight.add(-1);
    metrics_.dropped_egress.inc();
    resolve(msg, NetTraceEvent::Outcome::kDroppedEgress);
    return;
  }
  const double out_ser = static_cast<double>(msg.size_bytes) * 8.0 / out_bps;
  const double departs = std::max(now, out_lane.busy_until) + out_ser;
  out_lane.busy_until = departs;

  const double arrives_at_nic = departs + propagation_s(src, dst);

  // --- ingress serialization (evaluated on arrival at the receiver NIC) -----
  const NodeId dst_id = msg.dst;
  loop_.schedule_at(arrives_at_nic, [this, dst_id, priority,
                                     msg = std::move(msg)]() mutable {
    Port& d = ports_[static_cast<std::size_t>(dst_id)];
    if (!d.attached) {
      --stats_.in_flight;
      ++stats_.dropped_detached;
      metrics_.in_flight.add(-1);
      metrics_.dropped_detached.inc();
      resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
      return;
    }
    const double now2 = loop_.now();
    Lane& in_lane = priority ? d.ingress_ctrl : d.ingress_data;
    const double in_bps = priority
                              ? d.nic.ingress_bps * d.nic.control_share
                              : d.nic.ingress_bps * (1.0 - d.nic.control_share);
    const double in_backlog = std::max(0.0, in_lane.busy_until - now2);
    if (in_backlog > d.nic.max_queue_s) {
      --stats_.in_flight;
      ++stats_.dropped_ingress;
      metrics_.in_flight.add(-1);
      metrics_.dropped_ingress.inc();
      resolve(msg, NetTraceEvent::Outcome::kDroppedIngress);
      return;
    }
    const double in_ser = static_cast<double>(msg.size_bytes) * 8.0 / in_bps;
    const double done = std::max(now2, in_lane.busy_until) + in_ser;
    in_lane.busy_until = done;
    loop_.schedule_at(done, [this, dst_id, msg = std::move(msg)]() mutable {
      Port& d2 = ports_[static_cast<std::size_t>(dst_id)];
      --stats_.in_flight;
      metrics_.in_flight.add(-1);
      if (!d2.attached) {
        ++stats_.dropped_detached;
        metrics_.dropped_detached.inc();
        resolve(msg, NetTraceEvent::Outcome::kDroppedDetached);
        return;
      }
      ++stats_.delivered;
      stats_.bytes_delivered += msg.size_bytes;
      metrics_.delivered.inc();
      metrics_.bytes_delivered.inc(static_cast<std::uint64_t>(msg.size_bytes));
      resolve(msg, NetTraceEvent::Outcome::kDelivered);
      d2.node->on_message(msg);
    });
  });
}

}  // namespace shuffledef::cloudsim

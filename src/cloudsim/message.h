// Wire protocol of the simulated defense (Figure 1 / Figure 11 of the paper).
//
// Every interaction in the architecture — DNS resolution, load-balancer
// redirection, whitelist provisioning, page fetches, WebSocket pushes,
// coordination commands, and attack traffic — is a typed message with a
// size in bytes.  Sizes matter: they drive the bandwidth/queueing model
// that produces the user-perceived latencies of Figure 12.
#pragma once

#include <any>
#include <cstdint>
#include <string>
#include <vector>

namespace shuffledef::cloudsim {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class MessageType : std::uint8_t {
  // DNS (step 1-2)
  kDnsQuery,
  kDnsReply,
  // Load balancer (step 3-4)
  kClientHello,     // new client asks the LB for a replica
  kRedirect,        // LB or replica sends the client somewhere else
  kWhitelistAdd,    // LB informs a replica of an assignment
  // Application traffic (step 5-6)
  kHttpGet,
  kHttpResponse,
  kWsOpen,          // client opens a WebSocket to its replica
  kWsOpenAck,
  kWsPush,          // replica-initiated redirect notification (step 3 fig11)
  kWsPing,          // client keepalive probe on the WebSocket
  kWsPong,
  // Attack traffic
  kJunkPacket,      // network flood
  kHeavyRequest,    // computational DDoS (expensive application request)
  // Coordination plane (dedicated command & control channel)
  kAttackReport,    // replica -> coordinator: I am being flooded
  kShuffleCommand,  // coordinator -> replica: redirect these clients
  kDecommission,    // replica -> coordinator: all clients notified, recycle me
  kProvisionDone,   // cloud provider -> coordinator: replica instance booted
  kBotReport,       // persistent bot -> botmaster: current target address
  kFloodCommand,    // botmaster -> naive bots: flood this address list
};

const char* message_type_name(MessageType type) noexcept;

/// Control-plane and redirect messages ride a prioritized lane (the paper:
/// "client redirection traffic is treated preferentially in the cloud
/// network"), so floods cannot starve the defense's own signalling.
bool is_priority_type(MessageType type) noexcept;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageType type{};
  std::int64_t size_bytes = 0;
  std::any payload;  // one of the payload structs below (or empty)
};

// ---- payload structs -------------------------------------------------------

struct DnsQueryPayload {
  std::string service;
};

struct DnsReplyPayload {
  std::string service;
  NodeId load_balancer = kInvalidNode;
};

struct ClientHelloPayload {
  std::string client_ip;
};

struct RedirectPayload {
  NodeId target_replica = kInvalidNode;
};

struct WhitelistAddPayload {
  std::string client_ip;
  NodeId client_node = kInvalidNode;
};

struct HttpGetPayload {
  std::string client_ip;
  std::string path = "/";
};

struct HttpResponsePayload {
  int status = 200;
  std::string path;
};

struct WsOpenPayload {
  std::string client_ip;
};

struct WsPushPayload {
  NodeId new_replica = kInvalidNode;
};

struct HeavyRequestPayload {
  std::string client_ip;
  double cpu_seconds = 0.0;  // work the request forces on the server
};

struct AttackReportPayload {
  NodeId replica = kInvalidNode;
  double observed_rate = 0.0;  // packets+requests per second
};

struct ShuffleCommandPayload {
  // For each client currently on the replica: where it must move.
  std::vector<std::pair<NodeId, NodeId>> client_to_replica;
};

struct DecommissionPayload {
  NodeId replica = kInvalidNode;
  std::int64_t clients_notified = 0;
};

struct ProvisionDonePayload {
  NodeId replica = kInvalidNode;
  std::int32_t domain = 0;
};

struct BotReportPayload {
  NodeId observed_replica = kInvalidNode;
};

struct FloodCommandPayload {
  std::vector<NodeId> targets;
};

// Representative wire sizes (bytes).
inline constexpr std::int64_t kDnsMessageBytes = 128;
inline constexpr std::int64_t kControlMessageBytes = 256;
inline constexpr std::int64_t kHttpRequestBytes = 512;
inline constexpr std::int64_t kWsFrameBytes = 128;
inline constexpr std::int64_t kJunkPacketBytes = 1400;

}  // namespace shuffledef::cloudsim

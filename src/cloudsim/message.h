// Wire protocol of the simulated defense (Figure 1 / Figure 11 of the paper).
//
// Every interaction in the architecture — DNS resolution, load-balancer
// redirection, whitelist provisioning, page fetches, WebSocket pushes,
// coordination commands, and attack traffic — is a typed message with a
// size in bytes.  Sizes matter: they drive the bandwidth/queueing model
// that produces the user-perceived latencies of Figure 12.
//
// Payloads are a closed std::variant over POD-ish structs (no std::any, no
// heap allocation for the common fixed-size payloads), and client IPs /
// service names are interned to integer ids by the World.  Both choices are
// what keep a million-client scenario's message traffic allocation-free on
// the hot path.
#pragma once

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

namespace shuffledef::cloudsim {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Interned identifier for a client IP string (see World::intern_ip).
using IpId = std::int32_t;
inline constexpr IpId kInvalidIp = -1;

/// Interned identifier for a service name (see World::intern_service).
using ServiceId = std::int32_t;
inline constexpr ServiceId kInvalidService = -1;

enum class MessageType : std::uint8_t {
  // DNS (step 1-2)
  kDnsQuery,
  kDnsReply,
  // Load balancer (step 3-4)
  kClientHello,     // new client asks the LB for a replica
  kRedirect,        // LB or replica sends the client somewhere else
  kWhitelistAdd,    // LB informs a replica of an assignment
  kWhitelistBatch,  // coordinator bulk-provisions a replica's whitelist
  // Application traffic (step 5-6)
  kHttpGet,
  kHttpResponse,
  kWsOpen,          // client opens a WebSocket to its replica
  kWsOpenAck,
  kWsPush,          // replica-initiated redirect notification (step 3 fig11)
  kWsPing,          // client keepalive probe on the WebSocket
  kWsPong,
  // Attack traffic
  kJunkPacket,      // network flood
  kHeavyRequest,    // computational DDoS (expensive application request)
  // Coordination plane (dedicated command & control channel)
  kAttackReport,    // replica -> coordinator: I am being flooded
  kQosReport,       // replica -> coordinator: periodic latency/queue sample
  kShuffleCommand,  // coordinator -> replica: redirect these clients
  kDecommission,    // replica -> coordinator: all clients notified, recycle me
  kProvisionDone,   // cloud provider -> coordinator: replica instance booted
  kBotReport,       // persistent bot -> botmaster: current target address
  kFloodCommand,    // botmaster -> naive bots: flood this address list
};

const char* message_type_name(MessageType type) noexcept;

/// Control-plane and redirect messages ride a prioritized lane (the paper:
/// "client redirection traffic is treated preferentially in the cloud
/// network"), so floods cannot starve the defense's own signalling.
bool is_priority_type(MessageType type) noexcept;

// ---- payload structs -------------------------------------------------------

struct DnsQueryPayload {
  ServiceId service = kInvalidService;
};

struct DnsReplyPayload {
  ServiceId service = kInvalidService;
  NodeId load_balancer = kInvalidNode;
};

struct ClientHelloPayload {
  IpId client_ip = kInvalidIp;
};

struct RedirectPayload {
  NodeId target_replica = kInvalidNode;
};

struct WhitelistAddPayload {
  IpId client_ip = kInvalidIp;
  NodeId client_node = kInvalidNode;
};

struct WhitelistBatchPayload {
  // (client ip, client node) pairs, all destined for the receiving replica.
  std::vector<std::pair<IpId, NodeId>> entries;
};

struct HttpGetPayload {
  IpId client_ip = kInvalidIp;
};

struct HttpResponsePayload {
  int status = 200;
};

struct WsOpenPayload {
  IpId client_ip = kInvalidIp;
};

struct WsPushPayload {
  NodeId new_replica = kInvalidNode;
};

struct HeavyRequestPayload {
  IpId client_ip = kInvalidIp;
  double cpu_seconds = 0.0;  // work the request forces on the server
};

struct AttackReportPayload {
  NodeId replica = kInvalidNode;
  double observed_rate = 0.0;  // packets+requests per second
};

/// Periodic per-replica QoS sample (the closed-loop control plane's input):
/// EWMA of request service latency and the instantaneous queue depth (CPU
/// backlog + egress backlog), both sampled on a deterministic event-loop
/// tick (cloudsim/qos.h).
struct QosReportPayload {
  NodeId replica = kInvalidNode;
  double latency_ewma_s = 0.0;
  double queue_depth_s = 0.0;
};

struct ShuffleCommandPayload {
  // For each client currently on the replica: where it must move.
  std::vector<std::pair<NodeId, NodeId>> client_to_replica;
};

struct DecommissionPayload {
  NodeId replica = kInvalidNode;
  std::int64_t clients_notified = 0;
};

struct ProvisionDonePayload {
  NodeId replica = kInvalidNode;
  std::int32_t domain = 0;
};

struct BotReportPayload {
  NodeId observed_replica = kInvalidNode;
};

struct FloodCommandPayload {
  std::vector<NodeId> targets;
};

/// The closed set of message payloads.  monostate = no payload.
using Payload =
    std::variant<std::monostate, DnsQueryPayload, DnsReplyPayload,
                 ClientHelloPayload, RedirectPayload, WhitelistAddPayload,
                 WhitelistBatchPayload, HttpGetPayload, HttpResponsePayload,
                 WsOpenPayload, WsPushPayload, HeavyRequestPayload,
                 AttackReportPayload, QosReportPayload, ShuffleCommandPayload,
                 DecommissionPayload, ProvisionDonePayload, BotReportPayload,
                 FloodCommandPayload>;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageType type{};
  std::int64_t size_bytes = 0;
  Payload payload;
};

/// Typed payload access; throws std::bad_variant_access on a type mismatch
/// (a protocol bug, exactly like the old std::any_cast behaviour).
template <typename T>
[[nodiscard]] const T& payload_as(const Message& msg) {
  return std::get<T>(msg.payload);
}

// Representative wire sizes (bytes).
inline constexpr std::int64_t kDnsMessageBytes = 128;
inline constexpr std::int64_t kControlMessageBytes = 256;
inline constexpr std::int64_t kHttpRequestBytes = 512;
inline constexpr std::int64_t kWsFrameBytes = 128;
inline constexpr std::int64_t kJunkPacketBytes = 1400;
/// Incremental wire cost per entry of a kWhitelistBatch message.
inline constexpr std::int64_t kWhitelistEntryBytes = 16;

}  // namespace shuffledef::cloudsim

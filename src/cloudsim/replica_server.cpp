#include "cloudsim/replica_server.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace shuffledef::cloudsim {

ReplicaServer::ReplicaServer(World& world, std::string name,
                             ReplicaConfig config, NodeId coordinator)
    : Node(world, std::move(name)), config_(config), coordinator_(coordinator) {
  // Shuffle assignments land thousands of clients per replica; pre-sizing
  // the per-client tables keeps rehashing off the request hot path.
  whitelist_.reserve(1024);
  websockets_.reserve(1024);
  if (config_.registry != nullptr) {
    latency_ewma_us_ = config_.registry->gauge(kMetricReplicaLatencyEwmaUs);
    queue_depth_peak_us_ =
        config_.registry->gauge(kMetricReplicaQueueDepthPeakUs);
    qos_reports_ = config_.registry->counter(kMetricReplicaQosReports);
  }
}

void ReplicaServer::on_start() {
  loop().schedule_after(config_.detect_window_s, [this] { detection_tick(); });
  if (config_.qos_report_interval_s > 0.0) {
    loop().schedule_after(config_.qos_report_interval_s,
                          [this] { qos_tick(); });
  }
}

double ReplicaServer::cpu_backlog_s() const {
  return std::max(0.0, cpu_busy_until_ - world_now());
}

double ReplicaServer::queue_depth_s() const {
  // Both halves of the resource model: the CPU service queue (computational
  // DDoS) and the NIC egress queue (network DDoS — a flooded 30 Mbps link
  // shows up here long before the CPU notices anything).
  return cpu_backlog_s() +
         const_cast<ReplicaServer*>(this)->world().network().egress_backlog_s(
             id());
}

void ReplicaServer::qos_tick() {
  if (decommissioned_) return;  // crash() implies decommissioned_
  const double queue_depth = queue_depth_s();
  latency_ewma_us_.set(std::llround(latency_ewma_s_ * 1e6));
  queue_depth_peak_us_.max_with(std::llround(queue_depth * 1e6));
  qos_reports_.inc();
  if (coordinator_ != kInvalidNode) {
    send(coordinator_, MessageType::kQosReport, kControlMessageBytes,
         QosReportPayload{id(), latency_ewma_s_, queue_depth});
  }
  loop().schedule_after(config_.qos_report_interval_s, [this] { qos_tick(); });
}

// Node has no const accessor for the loop; keep a tiny helper.
// (Defined out-of-class to avoid exposing World in the header.)
double ReplicaServer::world_now() const {
  return const_cast<ReplicaServer*>(this)->loop().now();
}

void ReplicaServer::send_attack_report(double junk_rate) {
  attack_reported_ = true;
  last_report_at_ = loop().now();
  ++stats_.attack_reports_sent;
  send(coordinator_, MessageType::kAttackReport, kControlMessageBytes,
       AttackReportPayload{id(), junk_rate});
}

void ReplicaServer::detection_tick() {
  if (decommissioned_) return;
  const double junk_rate =
      static_cast<double>(junk_in_window_) / config_.detect_window_s;
  junk_in_window_ = 0;
  const bool under_attack = junk_rate > config_.junk_rate_threshold ||
                            cpu_backlog_s() > config_.cpu_backlog_threshold_s;
  if (under_attack && coordinator_ != kInvalidNode) {
    // Report once per episode, then renew periodically while the attack
    // persists: the control channel may lose reports, and a lost or failed
    // shuffle round must not leave the replica silently burning.
    const bool renew = attack_reported_ && config_.report_renew_s > 0 &&
                       loop().now() - last_report_at_ >= config_.report_renew_s;
    if (!attack_reported_ || renew) {
      if (!attack_reported_) {
        SDEF_LOG(Info) << name() << ": attack detected (junk " << junk_rate
                       << "/s, cpu backlog " << cpu_backlog_s() << "s)";
      }
      send_attack_report(junk_rate);
    }
  }
  loop().schedule_after(config_.detect_window_s, [this] { detection_tick(); });
}

void ReplicaServer::serve(NodeId reply_to, double cpu_seconds,
                          std::int32_t reply_bytes) {
  const double now = loop().now();
  const double start = std::max(now, cpu_busy_until_);
  if (start + cpu_seconds - now > config_.cpu_queue_limit_s) {
    ++stats_.shed_cpu_overload;
    return;
  }
  cpu_busy_until_ = start + cpu_seconds;
  // Service latency (queueing + CPU) is known at admission; folding it into
  // the EWMA here keeps the reply closure at 16 captured bytes (small-buffer
  // constraint above).  Egress delay is tracked separately via queue depth.
  latency_ewma_s_ = config_.qos_latency_alpha * (cpu_busy_until_ - now) +
                    (1.0 - config_.qos_latency_alpha) * latency_ewma_s_;
  loop().schedule_at(cpu_busy_until_, [this, reply_to, reply_bytes] {
    if (decommissioned_) return;
    send(reply_to, MessageType::kHttpResponse, reply_bytes,
         HttpResponsePayload{200});
  });
}

void ReplicaServer::on_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::kWhitelistAdd: {
      const auto& add = payload_as<WhitelistAddPayload>(msg);
      whitelist_[add.client_ip] = add.client_node;
      break;
    }
    case MessageType::kWhitelistBatch: {
      const auto& batch = payload_as<WhitelistBatchPayload>(msg);
      whitelist_.reserve(whitelist_.size() + batch.entries.size());
      for (const auto& [ip, node] : batch.entries) whitelist_[ip] = node;
      break;
    }
    case MessageType::kHttpGet: {
      const auto& get = payload_as<HttpGetPayload>(msg);
      if (!whitelist_.contains(get.client_ip)) {
        ++stats_.rejected_not_whitelisted;  // silently dropped (filtering)
        break;
      }
      ++stats_.pages_served;
      serve(msg.src, config_.cpu_per_request_s,
            static_cast<std::int32_t>(config_.page_bytes));
      break;
    }
    case MessageType::kHeavyRequest: {
      const auto& heavy = payload_as<HeavyRequestPayload>(msg);
      if (!whitelist_.contains(heavy.client_ip)) {
        ++stats_.rejected_not_whitelisted;
        break;
      }
      ++stats_.heavy_served;
      serve(msg.src, heavy.cpu_seconds,
            static_cast<std::int32_t>(kControlMessageBytes));
      break;
    }
    case MessageType::kWsOpen: {
      const auto& open = payload_as<WsOpenPayload>(msg);
      if (!whitelist_.contains(open.client_ip)) {
        ++stats_.rejected_not_whitelisted;
        break;
      }
      websockets_[open.client_ip] = msg.src;
      send(msg.src, MessageType::kWsOpenAck, kWsFrameBytes);
      break;
    }
    case MessageType::kWsPing: {
      send(msg.src, MessageType::kWsPong, kWsFrameBytes);
      break;
    }
    case MessageType::kJunkPacket: {
      ++stats_.junk_received;
      ++junk_in_window_;
      break;
    }
    case MessageType::kShuffleCommand: {
      const auto& cmd = payload_as<ShuffleCommandPayload>(msg);
      // Idempotent: a re-sent command (the coordinator's ack-retry loop, or
      // an injected duplicate) re-pushes the redirects — giving any lost
      // kWsPush another chance — and re-acks, but decommissions only once.
      if (decommissioned_) ++stats_.duplicate_shuffle_commands;
      // Client redirection is prioritized over all application logic (paper
      // §III-C); the pushes ride the control lane, so they get out even when
      // the data plane is saturated.  The whole span goes out as one batch:
      // one walking event instead of one closure per client.
      const auto n = static_cast<std::int64_t>(cmd.client_to_replica.size());
      std::vector<BatchItem> pushes(static_cast<std::size_t>(n));
      const auto build = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto& [client, new_replica] =
              cmd.client_to_replica[static_cast<std::size_t>(i)];
          pushes[static_cast<std::size_t>(i)] =
              BatchItem{client, WsPushPayload{new_replica}};
        }
      };
      if (config_.shard_threads > 1 && n >= 1024) {
        // Disjoint writes + fixed grain: bit-identical at any thread count.
        auto job = util::ThreadPool::shared().submit(
            0, n, build, /*grain=*/4096,
            static_cast<std::size_t>(config_.shard_threads));
        util::ThreadPool::shared().wait(job);
      } else {
        build(0, n);
      }
      world().network().send_batch(id(), MessageType::kWsPush, kWsFrameBytes,
                                   std::move(pushes));
      stats_.redirects_pushed += static_cast<std::uint64_t>(n);
      decommissioned_ = true;
      if (coordinator_ != kInvalidNode) {
        send(coordinator_, MessageType::kDecommission, kControlMessageBytes,
             DecommissionPayload{id(), n});
      }
      break;
    }
    default:
      break;
  }
}

void ReplicaServer::simulate_attack_detected() {
  if (decommissioned_ || attack_reported_ || coordinator_ == kInvalidNode) {
    return;
  }
  send_attack_report(0.0);
}

void ReplicaServer::crash() {
  crashed_ = true;
  decommissioned_ = true;  // stops detection ticks and queued replies
}

std::vector<std::pair<IpId, NodeId>> ReplicaServer::connected_clients()
    const {
  std::vector<std::pair<IpId, NodeId>> out;
  out.reserve(whitelist_.size());
  for (const auto& [ip, node] : whitelist_) out.emplace_back(ip, node);
  std::sort(out.begin(), out.end());  // deterministic iteration for the sim
  return out;
}

}  // namespace shuffledef::cloudsim

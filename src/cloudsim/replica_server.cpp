#include "cloudsim/replica_server.h"

#include <algorithm>

#include "util/logging.h"

namespace shuffledef::cloudsim {

ReplicaServer::ReplicaServer(World& world, std::string name,
                             ReplicaConfig config, NodeId coordinator)
    : Node(world, std::move(name)), config_(config), coordinator_(coordinator) {}

void ReplicaServer::on_start() {
  loop().schedule_after(config_.detect_window_s, [this] { detection_tick(); });
}

double ReplicaServer::cpu_backlog_s() const {
  return std::max(0.0, cpu_busy_until_ - world_now());
}

// Node has no const accessor for the loop; keep a tiny helper.
// (Defined out-of-class to avoid exposing World in the header.)
double ReplicaServer::world_now() const {
  return const_cast<ReplicaServer*>(this)->loop().now();
}

void ReplicaServer::send_attack_report(double junk_rate) {
  attack_reported_ = true;
  last_report_at_ = loop().now();
  ++stats_.attack_reports_sent;
  send(coordinator_, MessageType::kAttackReport, kControlMessageBytes,
       AttackReportPayload{id(), junk_rate});
}

void ReplicaServer::detection_tick() {
  if (decommissioned_) return;
  const double junk_rate =
      static_cast<double>(junk_in_window_) / config_.detect_window_s;
  junk_in_window_ = 0;
  const bool under_attack = junk_rate > config_.junk_rate_threshold ||
                            cpu_backlog_s() > config_.cpu_backlog_threshold_s;
  if (under_attack && coordinator_ != kInvalidNode) {
    // Report once per episode, then renew periodically while the attack
    // persists: the control channel may lose reports, and a lost or failed
    // shuffle round must not leave the replica silently burning.
    const bool renew = attack_reported_ && config_.report_renew_s > 0 &&
                       loop().now() - last_report_at_ >= config_.report_renew_s;
    if (!attack_reported_ || renew) {
      if (!attack_reported_) {
        SDEF_LOG(Info) << name() << ": attack detected (junk " << junk_rate
                       << "/s, cpu backlog " << cpu_backlog_s() << "s)";
      }
      send_attack_report(junk_rate);
    }
  }
  loop().schedule_after(config_.detect_window_s, [this] { detection_tick(); });
}

void ReplicaServer::serve(const Message& msg, double cpu_seconds,
                          std::int64_t reply_bytes, MessageType reply_type,
                          std::any reply_payload) {
  const double now = loop().now();
  const double start = std::max(now, cpu_busy_until_);
  if (start + cpu_seconds - now > config_.cpu_queue_limit_s) {
    ++stats_.shed_cpu_overload;
    return;
  }
  cpu_busy_until_ = start + cpu_seconds;
  const NodeId dst = msg.src;
  loop().schedule_at(cpu_busy_until_, [this, dst, reply_bytes, reply_type,
                                       payload = std::move(reply_payload)]() mutable {
    if (decommissioned_) return;
    send(dst, reply_type, reply_bytes, std::move(payload));
  });
}

void ReplicaServer::on_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::kWhitelistAdd: {
      const auto& add = std::any_cast<const WhitelistAddPayload&>(msg.payload);
      whitelist_[add.client_ip] = add.client_node;
      break;
    }
    case MessageType::kHttpGet: {
      const auto& get = std::any_cast<const HttpGetPayload&>(msg.payload);
      if (!whitelist_.contains(get.client_ip)) {
        ++stats_.rejected_not_whitelisted;  // silently dropped (filtering)
        break;
      }
      ++stats_.pages_served;
      serve(msg, config_.cpu_per_request_s, config_.page_bytes,
            MessageType::kHttpResponse, HttpResponsePayload{200, get.path});
      break;
    }
    case MessageType::kHeavyRequest: {
      const auto& heavy =
          std::any_cast<const HeavyRequestPayload&>(msg.payload);
      if (!whitelist_.contains(heavy.client_ip)) {
        ++stats_.rejected_not_whitelisted;
        break;
      }
      ++stats_.heavy_served;
      serve(msg, heavy.cpu_seconds, kControlMessageBytes,
            MessageType::kHttpResponse, HttpResponsePayload{200, "/heavy"});
      break;
    }
    case MessageType::kWsOpen: {
      const auto& open = std::any_cast<const WsOpenPayload&>(msg.payload);
      if (!whitelist_.contains(open.client_ip)) {
        ++stats_.rejected_not_whitelisted;
        break;
      }
      websockets_[open.client_ip] = msg.src;
      send(msg.src, MessageType::kWsOpenAck, kWsFrameBytes);
      break;
    }
    case MessageType::kWsPing: {
      send(msg.src, MessageType::kWsPong, kWsFrameBytes);
      break;
    }
    case MessageType::kJunkPacket: {
      ++stats_.junk_received;
      ++junk_in_window_;
      break;
    }
    case MessageType::kShuffleCommand: {
      const auto& cmd =
          std::any_cast<const ShuffleCommandPayload&>(msg.payload);
      // Idempotent: a re-sent command (the coordinator's ack-retry loop, or
      // an injected duplicate) re-pushes the redirects — giving any lost
      // kWsPush another chance — and re-acks, but decommissions only once.
      if (decommissioned_) ++stats_.duplicate_shuffle_commands;
      // Client redirection is prioritized over all application logic (paper
      // §III-C); the pushes ride the control lane, so they get out even when
      // the data plane is saturated.
      for (const auto& [client, new_replica] : cmd.client_to_replica) {
        send(client, MessageType::kWsPush, kWsFrameBytes,
             WsPushPayload{new_replica});
        ++stats_.redirects_pushed;
      }
      decommissioned_ = true;
      if (coordinator_ != kInvalidNode) {
        send(coordinator_, MessageType::kDecommission, kControlMessageBytes,
             DecommissionPayload{
                 id(), static_cast<std::int64_t>(cmd.client_to_replica.size())});
      }
      break;
    }
    default:
      break;
  }
}

void ReplicaServer::simulate_attack_detected() {
  if (decommissioned_ || attack_reported_ || coordinator_ == kInvalidNode) {
    return;
  }
  send_attack_report(0.0);
}

void ReplicaServer::crash() {
  crashed_ = true;
  decommissioned_ = true;  // stops detection ticks and queued replies
}

std::vector<std::pair<std::string, NodeId>> ReplicaServer::connected_clients()
    const {
  std::vector<std::pair<std::string, NodeId>> out;
  out.reserve(whitelist_.size());
  for (const auto& [ip, node] : whitelist_) out.emplace_back(ip, node);
  std::sort(out.begin(), out.end());  // deterministic iteration for the sim
  return out;
}

}  // namespace shuffledef::cloudsim

// Coordination server (paper §III-D): the central controller.
//
// Tracks the global replica set and client bindings, receives attack
// reports over the dedicated command & control channel (a priority lane no
// client can reach), and reacts to attacks by executing shuffle rounds:
//
//   report(s) arrive -> aggregate for a short window -> snapshot the
//   attacked replicas' clients -> core::ShuffleController (MLE estimate +
//   planner) sizes the new replica set and the assignment plan -> the cloud
//   provider boots replacements -> clients are randomly mapped to buckets ->
//   each attacked replica gets a kShuffleCommand and pushes WebSocket
//   redirects -> decommissioned replicas are recycled.
//
// Replicas that stop being attacked simply stop reporting: their clients
// are saved and stay put (non-shuffling replicas, paper §III-C).
//
// Nothing above assumes a reliable substrate.  Two watchdog/retry loops
// (both with capped exponential backoff) make the control plane survive
// injected faults (cloudsim/fault.h):
//
//   * provisioning — instances are requested individually and collected
//     against a deadline; missing instances are re-requested up to
//     `provision_max_retries` times, after which the round deploys degraded
//     onto whatever booted (late stragglers become hot spares).  With no
//     replicas at all the round re-queues its reports and retries later.
//   * shuffle commands — each kShuffleCommand must be acknowledged by the
//     replica's kDecommission; unacknowledged commands are re-sent (the
//     replica side is idempotent), and after `command_max_retries` the
//     replica is presumed crashed and force-recycled so its clients'
//     heartbeat rejoin path finds only live replicas.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cloudsim/cloud_provider.h"
#include "cloudsim/load_balancer.h"
#include "cloudsim/node.h"
#include "cloudsim/qos.h"
#include "core/shuffle_controller.h"
#include "obs/registry.h"

namespace shuffledef::cloudsim {

// Registry metric names mirroring CoordinatorStats.  The sink is
// `controller.registry` inside CoordinatorConfig — one registry covers the
// whole control plane.
inline constexpr std::string_view kMetricCoordAttackReports =
    "coord.attack_reports";
inline constexpr std::string_view kMetricCoordRoundsExecuted =
    "coord.rounds_executed";
inline constexpr std::string_view kMetricCoordClientsMigrated =
    "coord.clients_migrated";
inline constexpr std::string_view kMetricCoordReplicasRecycled =
    "coord.replicas_recycled";
inline constexpr std::string_view kMetricCoordProvisionRetries =
    "coord.provision_retries";
inline constexpr std::string_view kMetricCoordRoundsDegraded =
    "coord.rounds_degraded";
inline constexpr std::string_view kMetricCoordRoundsAborted =
    "coord.rounds_aborted";
inline constexpr std::string_view kMetricCoordCommandRetries =
    "coord.command_retries";
inline constexpr std::string_view kMetricCoordReplicasPresumedCrashed =
    "coord.replicas_presumed_crashed";
inline constexpr std::string_view kMetricCoordLateSparesBanked =
    "coord.late_spares_banked";
inline constexpr std::string_view kMetricCoordShufflesDeclined =
    "coord.shuffles_declined";

// Closed-loop control plane (cloudsim/qos.h).
inline constexpr std::string_view kMetricCoordPhase = "coord.phase";
inline constexpr std::string_view kMetricCoordOverloadedReplicas =
    "coord.overloaded_replicas";
inline constexpr std::string_view kMetricCoordRemapsInflight =
    "coord.remaps_inflight";
inline constexpr std::string_view kMetricCoordRemapsInflightPeak =
    "coord.remaps_inflight_peak";
inline constexpr std::string_view kMetricCoordPhaseSwitches =
    "coord.phase_switches";
inline constexpr std::string_view kMetricCoordQosReports = "coord.qos_reports";
inline constexpr std::string_view kMetricCoordAutoscaleProvisioned =
    "coord.autoscale_provisioned";
inline constexpr std::string_view kMetricCoordAutoscaleReleased =
    "coord.autoscale_released";

struct CoordinatorConfig {
  core::ControllerConfig controller;
  /// Collect attack reports for this long before acting, so one round
  /// covers every replica the botnet hit "simultaneously".
  double aggregation_window_s = 0.3;
  /// First-round bot estimate as a fraction of the affected pool.
  double initial_bot_fraction = 0.1;

  // ---- control-plane robustness ---------------------------------------------
  /// Deadline for a wave of provision requests before the shortfall is
  /// re-requested.  Must comfortably exceed the provider's boot delay.
  double provision_timeout_s = 3.0;
  /// Re-request waves beyond the first (0 = never retry, fail fast).
  int provision_max_retries = 4;
  /// Backoff between provisioning retry waves: initial * 2^(attempt-1),
  /// capped.
  double retry_backoff_initial_s = 0.25;
  double retry_backoff_cap_s = 2.0;
  /// Deadline for a replica's kDecommission ack of a kShuffleCommand before
  /// the command is re-sent (doubles per resend, capped at
  /// retry_backoff_cap_s + command_timeout_s).
  double command_timeout_s = 1.5;
  /// Re-sends beyond the first command; afterwards the replica is presumed
  /// crashed and force-recycled.
  int command_max_retries = 4;

  // ---- shuffle triggering ----------------------------------------------------
  /// Closed-loop latency feedback (cloudsim/qos.h).  When `qos.enabled`,
  /// replicas stream kQosReport samples, the phase machine thresholds them
  /// into kNormal/kOverload, overloaded replicas are shuffled (capped at
  /// `qos.max_concurrent_remaps` in flight) and the Theorem-1 autoscaler
  /// keeps a spare pool sized from the current bot estimate.
  QosConfig qos;
  /// Fixed-cadence baseline (the paper's model: shuffle every T seconds,
  /// attacked or not).  > 0 schedules a periodic tick that marks every
  /// active replica for shuffling.  0 = off (report/feedback driven only).
  double fixed_cadence_s = 0.0;
};

struct CoordinatorStats {
  std::int64_t attack_reports = 0;
  std::int64_t rounds_executed = 0;
  std::int64_t clients_migrated = 0;
  std::int64_t replicas_recycled = 0;

  // Control-plane retry/timeout accounting.
  std::int64_t provision_retries = 0;   // re-request waves issued
  std::int64_t rounds_degraded = 0;     // deployed with < planned replicas
  std::int64_t rounds_aborted = 0;      // no replica booted; round re-queued
  std::int64_t command_retries = 0;     // kShuffleCommand re-sends
  std::int64_t replicas_presumed_crashed = 0;  // force-recycled, no ack
  std::int64_t late_spares_banked = 0;  // stragglers kept as hot spares
  std::int64_t shuffles_declined = 0;   // cost-aware controller said no

  // Closed-loop control plane.
  std::int64_t qos_reports = 0;           // kQosReport samples ingested
  std::int64_t phase_switches = 0;        // kNormal <-> kOverload flips
  std::int64_t remap_cap_deferred = 0;    // shuffles pushed to a later round
  std::int64_t remaps_inflight_peak = 0;  // high-water mark of unacked remaps
  std::int64_t autoscale_provisioned = 0;  // spares booted by the autoscaler
  std::int64_t autoscale_released = 0;     // spares recycled after recovery
};

class CoordinationServer final : public Node {
 public:
  CoordinationServer(World& world, std::string name, CoordinatorConfig config);

  /// Wire up the backend (must happen before traffic flows).
  void set_infrastructure(CloudProvider* provider,
                          std::vector<LoadBalancer*> load_balancers);

  /// Register a pre-existing replica (initial deployment).
  void register_replica(NodeId replica);

  /// Add an already-booted standby replica.  Shuffle rounds consume spares
  /// before asking the provider for fresh instances, skipping the boot
  /// delay (paper §III-C: "a few hot spare replica servers can be
  /// maintained at runtime to expedite the shuffling process").
  void add_hot_spare(NodeId replica);

  void on_start() override;
  void on_message(const Message& msg) override;

  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] const std::set<NodeId>& active_replicas() const {
    return active_replicas_;
  }
  /// Replicas attacked since the last executed round (pending work).
  [[nodiscard]] const std::set<NodeId>& attacked_replicas() const {
    return attacked_;
  }
  /// Shuffle commands awaiting a kDecommission ack (pending retry state).
  [[nodiscard]] std::size_t pending_commands() const {
    return pending_commands_.size();
  }
  /// Warm standby replicas available to the next shuffle round.
  [[nodiscard]] std::size_t hot_spare_count() const {
    return hot_spares_.size();
  }

  /// Current control-plane phase (kNormal when the loop is disabled).
  [[nodiscard]] QosPhase qos_phase() const {
    return phase_machine_ ? phase_machine_->phase() : QosPhase::kNormal;
  }
  /// Full phase-switch trace — part of the determinism contract (compared
  /// bit-for-bit across replays, shard_threads settings, and engines).
  [[nodiscard]] const std::vector<QosPhaseTransition>& phase_transitions()
      const {
    static const std::vector<QosPhaseTransition> kNone;
    return phase_machine_ ? phase_machine_->transitions() : kNone;
  }

 private:
  /// One in-flight shuffle round waiting on provisioning.
  struct PendingRound {
    std::vector<NodeId> attacked;
    std::vector<std::pair<IpId, NodeId>> pool;
    core::RoundDecision decision;
    std::vector<NodeId> ready;
    std::int64_t target = 0;  // replicas wanted
    int attempt = 0;          // provisioning waves issued so far (1-based)
    bool deployed = false;
  };

  struct PendingCommand {
    ShuffleCommandPayload payload;
    int resends = 0;
    std::uint64_t epoch = 0;  // invalidates stale watchdog timers
  };

  /// Latest accepted kQosReport from one replica.
  struct QosSample {
    double latency_s = 0.0;
    double queue_s = 0.0;
    double at = 0.0;
  };

  void schedule_round();
  void execute_round();
  void cadence_tick();
  void evaluate_qos();
  void autoscale_up();
  void release_spares();
  void note_remaps_inflight();
  void request_wave(const std::shared_ptr<PendingRound>& round,
                    std::int64_t count);
  void arm_provision_watchdog(const std::shared_ptr<PendingRound>& round);
  void finish_round(const std::shared_ptr<PendingRound>& round);
  void deploy_shuffle(std::vector<NodeId> attacked,
                      std::vector<std::pair<IpId, NodeId>> pool,
                      core::RoundDecision decision,
                      const std::vector<NodeId>& new_replicas);
  void send_shuffle_command(NodeId replica);
  void arm_command_watchdog(NodeId replica, std::uint64_t epoch);
  void drop_replica(NodeId replica);
  [[nodiscard]] double backoff_s(int attempt) const;
  [[nodiscard]] ReplicaServer* replica_ptr(NodeId id);

  CoordinatorConfig config_;
  core::ShuffleController controller_;
  CloudProvider* provider_ = nullptr;
  std::vector<LoadBalancer*> load_balancers_;

  std::set<NodeId> active_replicas_;
  std::vector<NodeId> hot_spares_;
  std::set<NodeId> attacked_;
  bool round_pending_ = false;
  bool round_in_flight_ = false;
  bool seeded_estimate_ = false;

  std::map<NodeId, PendingCommand> pending_commands_;
  std::uint64_t command_epoch_ = 0;

  // Closed-loop control plane (all containers ordered => deterministic).
  std::optional<QosPhaseMachine> phase_machine_;
  std::map<NodeId, QosSample> qos_table_;
  std::int64_t autoscale_pending_ = 0;  // spare boots requested, not yet up
  // Warm spares in hot_spares_ that the autoscaler booted (vs seeded at
  // world start).  Recovery only releases these: recycling a spare the
  // provider never provisioned would drive its active count negative.
  std::int64_t autoscale_spares_ = 0;

  // Previous round's deployment, used as the MLE observation.
  struct LastRound {
    std::vector<NodeId> replicas;
    std::vector<core::Count> sizes;
  };
  std::optional<LastRound> last_round_;

  CoordinatorStats stats_;
  // Null handles when config_.controller.registry is null.
  struct {
    obs::Counter attack_reports, rounds_executed, clients_migrated,
        replicas_recycled, provision_retries, rounds_degraded, rounds_aborted,
        command_retries, replicas_presumed_crashed, late_spares_banked,
        shuffles_declined;
    obs::Counter qos_reports, phase_switches, autoscale_provisioned,
        autoscale_released;
    obs::Gauge phase, overloaded_replicas, remaps_inflight,
        remaps_inflight_peak;
  } metrics_;
};

}  // namespace shuffledef::cloudsim

// Coordination server (paper §III-D): the central controller.
//
// Tracks the global replica set and client bindings, receives attack
// reports over the dedicated command & control channel (a priority lane no
// client can reach), and reacts to attacks by executing shuffle rounds:
//
//   report(s) arrive -> aggregate for a short window -> snapshot the
//   attacked replicas' clients -> core::ShuffleController (MLE estimate +
//   planner) sizes the new replica set and the assignment plan -> the cloud
//   provider boots replacements -> clients are randomly mapped to buckets ->
//   each attacked replica gets a kShuffleCommand and pushes WebSocket
//   redirects -> decommissioned replicas are recycled.
//
// Replicas that stop being attacked simply stop reporting: their clients
// are saved and stay put (non-shuffling replicas, paper §III-C).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cloudsim/cloud_provider.h"
#include "cloudsim/load_balancer.h"
#include "cloudsim/node.h"
#include "core/shuffle_controller.h"

namespace shuffledef::cloudsim {

struct CoordinatorConfig {
  core::ControllerConfig controller;
  /// Collect attack reports for this long before acting, so one round
  /// covers every replica the botnet hit "simultaneously".
  double aggregation_window_s = 0.3;
  /// First-round bot estimate as a fraction of the affected pool.
  double initial_bot_fraction = 0.1;
};

struct CoordinatorStats {
  std::int64_t attack_reports = 0;
  std::int64_t rounds_executed = 0;
  std::int64_t clients_migrated = 0;
  std::int64_t replicas_recycled = 0;
};

class CoordinationServer final : public Node {
 public:
  CoordinationServer(World& world, std::string name, CoordinatorConfig config);

  /// Wire up the backend (must happen before traffic flows).
  void set_infrastructure(CloudProvider* provider,
                          std::vector<LoadBalancer*> load_balancers);

  /// Register a pre-existing replica (initial deployment).
  void register_replica(NodeId replica);

  /// Add an already-booted standby replica.  Shuffle rounds consume spares
  /// before asking the provider for fresh instances, skipping the boot
  /// delay (paper §III-C: "a few hot spare replica servers can be
  /// maintained at runtime to expedite the shuffling process").
  void add_hot_spare(NodeId replica);

  void on_message(const Message& msg) override;

  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] const std::set<NodeId>& active_replicas() const {
    return active_replicas_;
  }
  /// Replicas attacked since the last executed round (pending work).
  [[nodiscard]] const std::set<NodeId>& attacked_replicas() const {
    return attacked_;
  }

 private:
  void schedule_round();
  void execute_round();
  void deploy_shuffle(std::vector<NodeId> attacked,
                      std::vector<std::pair<std::string, NodeId>> pool,
                      core::RoundDecision decision,
                      const std::vector<NodeId>& new_replicas);
  [[nodiscard]] ReplicaServer* replica_ptr(NodeId id);

  CoordinatorConfig config_;
  core::ShuffleController controller_;
  CloudProvider* provider_ = nullptr;
  std::vector<LoadBalancer*> load_balancers_;

  std::set<NodeId> active_replicas_;
  std::vector<NodeId> hot_spares_;
  std::set<NodeId> attacked_;
  bool round_pending_ = false;
  bool round_in_flight_ = false;
  bool seeded_estimate_ = false;

  // Previous round's deployment, used as the MLE observation.
  struct LastRound {
    std::vector<NodeId> replicas;
    std::vector<core::Count> sizes;
  };
  std::optional<LastRound> last_round_;

  CoordinatorStats stats_;
};

}  // namespace shuffledef::cloudsim

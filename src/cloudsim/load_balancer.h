// Redirecting load balancer (architecture step 3-4, paper §III-B).
//
// Assigns each new client, identified by IP, to an active replica in its
// domain and *redirects* (never forwards): the reply carries the replica's
// unpublished address, and the replica is told to whitelist the client.
// Redirection acts as a two-way handshake, so spoofed-source junk cannot
// obtain a replica address, and the balancer never becomes a data-plane
// bottleneck.
//
// Sticky sessions: a known IP is pinned to its recorded replica.  Records
// outlive client departures for `record_ttl_s` (paper §VII: re-entering
// bots with a known IP are sent straight back to their previous replica and
// gain nothing by churning).  Records are keyed by interned IpId — the
// request hot path never hashes an IP string.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cloudsim/node.h"

namespace shuffledef::cloudsim {

struct LoadBalancerStats {
  std::uint64_t assignments = 0;       // fresh client-to-replica matches
  std::uint64_t sticky_hits = 0;       // clients pinned to recorded replicas
  std::uint64_t rejected_no_replica = 0;
  std::uint64_t rejected_spoofed = 0;  // hellos claiming unroutable IPs
};

class LoadBalancer final : public Node {
 public:
  LoadBalancer(World& world, std::string name, double record_ttl_s = 600.0);

  /// Replica pool management (driven by the coordination server).
  void add_replica(NodeId replica);
  void remove_replica(NodeId replica);
  [[nodiscard]] const std::vector<NodeId>& replicas() const { return replicas_; }

  /// Re-point a client's sticky record after a shuffle moved it.
  void update_binding(IpId client_ip, NodeId replica);

  /// Pre-size the sticky-record table (large populations avoid rehash
  /// churn on the hello hot path).
  void reserve_records(std::size_t n) { records_.reserve(n); }

  void on_message(const Message& msg) override;

  [[nodiscard]] const LoadBalancerStats& stats() const { return stats_; }

 private:
  struct Record {
    NodeId replica = kInvalidNode;
    SimTime expires = 0.0;
  };

  NodeId pick_replica();

  double record_ttl_s_;
  std::vector<NodeId> replicas_;
  std::size_t next_ = 0;  // round-robin cursor
  std::unordered_map<IpId, Record> records_;
  LoadBalancerStats stats_;
};

}  // namespace shuffledef::cloudsim

#include "cloudsim/node.h"

#include <stdexcept>

namespace shuffledef::cloudsim {

Node::Node(World& world, std::string name)
    : world_(world), name_(std::move(name)) {}

void Node::send(NodeId dst, MessageType type, std::int64_t size_bytes,
                Payload payload) {
  send_from(id_, dst, type, size_bytes, std::move(payload));
}

void Node::send_from(NodeId src_port, NodeId dst, MessageType type,
                     std::int64_t size_bytes, Payload payload) {
  Message msg;
  msg.src = src_port;
  msg.dst = dst;
  msg.type = type;
  msg.size_bytes = size_bytes;
  msg.payload = std::move(payload);
  world_.network().send(std::move(msg));
}

EventLoop& Node::loop() { return world_.loop(); }

util::Rng& Node::rng() { return world_.rng(); }

World::World(WorldConfig config)
    : network_(loop_, config.network), rng_(config.seed) {}

Node* World::node(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= by_port_.size()) {
    throw std::out_of_range("World: unknown node id");
  }
  return by_port_[static_cast<std::size_t>(id)];
}

}  // namespace shuffledef::cloudsim

// Network model: latency + bandwidth + queueing + tail drop.
//
// Each attached node gets a NIC with separate ingress and egress capacity.
// A message experiences, in order:
//
//   egress serialization  (size / sender egress bandwidth, FIFO backlog)
//   propagation           (sender base + receiver base + domain penalty)
//   ingress serialization (size / receiver ingress bandwidth, FIFO backlog)
//
// Backlogs are modelled as busy-until horizons — O(1) per message.  When a
// lane's backlog exceeds `max_queue_s` the message is tail-dropped, which is
// how a junk-packet flood starves a victim's page responses while the
// prioritized control lane (redirects, coordination traffic — see
// is_priority_type) keeps working: the paper's "client redirection traffic
// is treated preferentially" assumption, made explicit.
//
// Domains model the paper's separately-managed cloud regions: traffic
// between different domains pays `inter_domain_extra_s` more propagation.
#pragma once

#include <cstdint>
#include <vector>

#include "cloudsim/event_loop.h"
#include "cloudsim/message.h"

namespace shuffledef::cloudsim {

class Node;  // full definition in node.h

struct NicConfig {
  double egress_bps = 100e6;    // bits per second
  double ingress_bps = 100e6;   // bits per second
  double base_latency_s = 0.01; // one-way propagation to the network core
  std::int32_t domain = 0;
  double max_queue_s = 0.5;     // tail-drop beyond this backlog
  /// Fraction of bandwidth reserved for the priority (control) lane.
  double control_share = 0.1;
};

struct NetworkConfig {
  double intra_domain_extra_s = 0.0005;
  double inter_domain_extra_s = 0.03;
};

struct NetworkStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_egress = 0;
  std::uint64_t dropped_ingress = 0;
  std::uint64_t dropped_detached = 0;
  std::int64_t bytes_delivered = 0;
};

class Network {
 public:
  Network(EventLoop& loop, NetworkConfig config);

  /// Attach a node; returns its address.  The node must outlive the network
  /// or be detached first.
  NodeId attach(Node* node, NicConfig nic);

  /// Detach (recycle) a node: all in-flight and future messages to it are
  /// dropped.  The address is never reused.
  void detach(NodeId id);

  [[nodiscard]] bool is_attached(NodeId id) const;

  /// Queue a message for delivery; applies the full latency model.
  void send(Message msg);

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const NicConfig& nic(NodeId id) const;

  /// Current egress data-lane backlog of a node, in seconds (observable by
  /// the node itself, e.g. for load metrics).
  [[nodiscard]] double egress_backlog_s(NodeId id) const;

 private:
  struct Lane {
    double busy_until = 0.0;
  };
  struct Port {
    Node* node = nullptr;
    NicConfig nic;
    bool attached = false;
    Lane egress_data, egress_ctrl, ingress_data, ingress_ctrl;
  };

  Port& port_at(NodeId id);
  const Port& port_at(NodeId id) const;
  [[nodiscard]] double propagation_s(const Port& src, const Port& dst) const;

  EventLoop& loop_;
  NetworkConfig config_;
  std::vector<Port> ports_;
  NetworkStats stats_;
};

}  // namespace shuffledef::cloudsim

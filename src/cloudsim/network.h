// Network model: latency + bandwidth + queueing + tail drop.
//
// Each attached node gets a NIC with separate ingress and egress capacity.
// A message experiences, in order:
//
//   egress serialization  (size / sender egress bandwidth, FIFO backlog)
//   propagation           (sender base + receiver base + domain penalty)
//   ingress serialization (size / receiver ingress bandwidth, FIFO backlog)
//
// Backlogs are modelled as busy-until horizons — O(1) per message.  When a
// lane's backlog exceeds `max_queue_s` the message is tail-dropped, which is
// how a junk-packet flood starves a victim's page responses while the
// prioritized control lane (redirects, coordination traffic — see
// is_priority_type) keeps working: the paper's "client redirection traffic
// is treated preferentially" assumption, made explicit.
//
// Domains model the paper's separately-managed cloud regions: traffic
// between different domains pays `inter_domain_extra_s` more propagation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cloudsim/event_loop.h"
#include "cloudsim/message.h"
#include "obs/registry.h"

namespace shuffledef::cloudsim {

// Registry metric names mirroring NetworkStats (same semantics, same
// conservation invariant; see ARCHITECTURE.md "Observability").
inline constexpr std::string_view kMetricNetSends = "net.sends";
inline constexpr std::string_view kMetricNetDelivered = "net.delivered";
inline constexpr std::string_view kMetricNetDroppedEgress =
    "net.dropped_egress";
inline constexpr std::string_view kMetricNetDroppedIngress =
    "net.dropped_ingress";
inline constexpr std::string_view kMetricNetDroppedDetached =
    "net.dropped_detached";
inline constexpr std::string_view kMetricNetDroppedFaulted =
    "net.dropped_faulted";
inline constexpr std::string_view kMetricNetDuplicated = "net.duplicated";
inline constexpr std::string_view kMetricNetBytesDelivered =
    "net.bytes_delivered";
inline constexpr std::string_view kMetricNetInFlight = "net.in_flight";

class Node;           // full definition in node.h
class FaultInjector;  // full definition in fault.h

struct NicConfig {
  double egress_bps = 100e6;    // bits per second
  double ingress_bps = 100e6;   // bits per second
  double base_latency_s = 0.01; // one-way propagation to the network core
  std::int32_t domain = 0;
  double max_queue_s = 0.5;     // tail-drop beyond this backlog
  /// Fraction of bandwidth reserved for the priority (control) lane.
  double control_share = 0.1;
};

struct NetworkConfig {
  double intra_domain_extra_s = 0.0005;
  double inter_domain_extra_s = 0.03;
};

struct NetworkStats {
  std::uint64_t sends = 0;       // every send() call
  std::uint64_t delivered = 0;
  std::uint64_t dropped_egress = 0;
  std::uint64_t dropped_ingress = 0;
  std::uint64_t dropped_detached = 0;
  std::uint64_t dropped_faulted = 0;  // injected loss (fault subsystem)
  std::uint64_t duplicated = 0;       // extra copies injected
  std::uint64_t in_flight = 0;        // accepted, not yet resolved
  std::int64_t bytes_delivered = 0;

  /// Conservation invariant: every send() and every injected duplicate is
  /// delivered, dropped (for exactly one reason), or still in flight.
  [[nodiscard]] bool conserved() const noexcept {
    return sends + duplicated == delivered + dropped_egress +
                                     dropped_ingress + dropped_detached +
                                     dropped_faulted + in_flight;
  }
};

/// One resolved message in the network's (optional) event trace.  Traces of
/// two runs with the same seed must compare equal — the determinism tests
/// rely on it.
struct NetTraceEvent {
  enum class Outcome : std::uint8_t {
    kDelivered,
    kDroppedEgress,
    kDroppedIngress,
    kDroppedDetached,
    kDroppedFaulted,
    kDuplicated,  // a copy was injected (the copy resolves separately)
  };
  double time = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageType type{};
  std::int64_t size_bytes = 0;
  Outcome outcome{};

  bool operator==(const NetTraceEvent&) const = default;
};

class Network {
 public:
  Network(EventLoop& loop, NetworkConfig config);

  /// Attach a node; returns its address.  The node must outlive the network
  /// or be detached first.
  NodeId attach(Node* node, NicConfig nic);

  /// Detach (recycle) a node: all in-flight and future messages to it are
  /// dropped.  The address is never reused.
  void detach(NodeId id);

  [[nodiscard]] bool is_attached(NodeId id) const;

  /// Queue a message for delivery; applies the full latency model (and the
  /// fault injector, when one is installed).
  void send(Message msg);

  /// Install a fault injector consulted on every send (nullptr = fault-free;
  /// non-owning, must outlive the network or be cleared).
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Mirror every NetworkStats field onto registry metrics (kMetricNet*).
  /// The struct stays authoritative — `stats().conserved()` holds exactly as
  /// before — and the registry copies obey the same conservation law.
  /// Call before traffic starts; nullptr detaches.
  void set_registry(obs::Registry* registry);

  /// Record every resolved message into an event trace (off by default —
  /// costs memory proportional to traffic).
  void enable_trace() noexcept { trace_enabled_ = true; }
  [[nodiscard]] const std::vector<NetTraceEvent>& trace() const noexcept {
    return trace_;
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const NicConfig& nic(NodeId id) const;

  /// Current egress data-lane backlog of a node, in seconds (observable by
  /// the node itself, e.g. for load metrics).
  [[nodiscard]] double egress_backlog_s(NodeId id) const;

 private:
  struct Lane {
    double busy_until = 0.0;
  };
  struct Port {
    Node* node = nullptr;
    NicConfig nic;
    bool attached = false;
    Lane egress_data, egress_ctrl, ingress_data, ingress_ctrl;
  };

  Port& port_at(NodeId id);
  const Port& port_at(NodeId id) const;
  [[nodiscard]] double propagation_s(const Port& src, const Port& dst) const;

  /// Push a (fault-gate-passed) message through egress/propagation/ingress.
  /// Callers must have counted it into stats_.in_flight.
  void transmit(Message msg);
  void resolve(const Message& msg, NetTraceEvent::Outcome outcome);

  EventLoop& loop_;
  NetworkConfig config_;
  std::vector<Port> ports_;
  NetworkStats stats_;
  FaultInjector* fault_ = nullptr;
  bool trace_enabled_ = false;
  std::vector<NetTraceEvent> trace_;
  // Null handles when no registry is set (all mirror ops no-op).
  struct {
    obs::Counter sends, delivered, dropped_egress, dropped_ingress,
        dropped_detached, dropped_faulted, duplicated, bytes_delivered;
    obs::Gauge in_flight;
  } metrics_;
};

}  // namespace shuffledef::cloudsim

// Network model: latency + bandwidth + queueing + tail drop.
//
// Each attached node gets a NIC with separate ingress and egress capacity.
// A message experiences, in order:
//
//   egress serialization  (size / sender egress bandwidth, FIFO backlog)
//   propagation           (sender base + receiver base + domain penalty)
//   ingress serialization (size / receiver ingress bandwidth, FIFO backlog)
//
// Backlogs are modelled as busy-until horizons — O(1) per message.  When a
// lane's backlog exceeds `max_queue_s` the message is tail-dropped, which is
// how a junk-packet flood starves a victim's page responses while the
// prioritized control lane (redirects, coordination traffic — see
// is_priority_type) keeps working: the paper's "client redirection traffic
// is treated preferentially" assumption, made explicit.
//
// Domains model the paper's separately-managed cloud regions: traffic
// between different domains pays `inter_domain_extra_s` more propagation.
//
// Two delivery engines share this model:
//
//  * legacy (default): each in-flight message rides inside two heap-
//    allocated std::function closures.  Simple, and retained as the
//    reference the pooled engine is differentially tested against.
//  * pooled (set_pooled_delivery): messages live in a slot arena and the
//    network schedules POD fast-path events against it — no per-message
//    heap allocation.  With batched delivery on (the default), each ingress
//    lane runs a *walker*: arrivals enqueue into a per-lane pending heap
//    and one POD event per lane fires at the next delivery instant,
//    draining every matured arrival in (arrival, send-order) sequence.
//    Quiet lanes pay a single 32-byte event per delivered message instead
//    of two 48-byte closures.  set_batch_delivery(false) degrades to one
//    scheduled closure per arrival and per delivery — the within-pooled
//    differential oracle; delivery instants are identical either way.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "cloudsim/event_loop.h"
#include "cloudsim/message.h"
#include "obs/registry.h"

namespace shuffledef::cloudsim {

// Registry metric names mirroring NetworkStats (same semantics, same
// conservation invariant; see ARCHITECTURE.md "Observability").
inline constexpr std::string_view kMetricNetSends = "net.sends";
inline constexpr std::string_view kMetricNetDelivered = "net.delivered";
inline constexpr std::string_view kMetricNetDroppedEgress =
    "net.dropped_egress";
inline constexpr std::string_view kMetricNetDroppedIngress =
    "net.dropped_ingress";
inline constexpr std::string_view kMetricNetDroppedDetached =
    "net.dropped_detached";
inline constexpr std::string_view kMetricNetDroppedFaulted =
    "net.dropped_faulted";
inline constexpr std::string_view kMetricNetDuplicated = "net.duplicated";
inline constexpr std::string_view kMetricNetBytesDelivered =
    "net.bytes_delivered";
inline constexpr std::string_view kMetricNetInFlight = "net.in_flight";

class Node;           // full definition in node.h
class FaultInjector;  // full definition in fault.h

struct NicConfig {
  double egress_bps = 100e6;    // bits per second
  double ingress_bps = 100e6;   // bits per second
  double base_latency_s = 0.01; // one-way propagation to the network core
  std::int32_t domain = 0;
  double max_queue_s = 0.5;     // tail-drop beyond this backlog
  /// Fraction of bandwidth reserved for the priority (control) lane.
  double control_share = 0.1;
};

struct NetworkConfig {
  double intra_domain_extra_s = 0.0005;
  double inter_domain_extra_s = 0.03;
};

struct NetworkStats {
  std::uint64_t sends = 0;       // every send() call
  std::uint64_t delivered = 0;
  std::uint64_t dropped_egress = 0;
  std::uint64_t dropped_ingress = 0;
  std::uint64_t dropped_detached = 0;
  std::uint64_t dropped_faulted = 0;  // injected loss (fault subsystem)
  std::uint64_t duplicated = 0;       // extra copies injected
  std::uint64_t in_flight = 0;        // accepted, not yet resolved
  std::int64_t bytes_delivered = 0;

  /// Conservation invariant: every send() and every injected duplicate is
  /// delivered, dropped (for exactly one reason), or still in flight.
  [[nodiscard]] bool conserved() const noexcept {
    return sends + duplicated == delivered + dropped_egress +
                                     dropped_ingress + dropped_detached +
                                     dropped_faulted + in_flight;
  }
};

/// One resolved message in the network's (optional) event trace.  Traces of
/// two runs with the same seed must compare equal — the determinism tests
/// rely on it.
struct NetTraceEvent {
  enum class Outcome : std::uint8_t {
    kDelivered,
    kDroppedEgress,
    kDroppedIngress,
    kDroppedDetached,
    kDroppedFaulted,
    kDuplicated,  // a copy was injected (the copy resolves separately)
  };
  double time = 0.0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageType type{};
  std::int64_t size_bytes = 0;
  Outcome outcome{};

  bool operator==(const NetTraceEvent&) const = default;
};

/// One element of a send_batch fan-out.
struct BatchItem {
  NodeId dst = kInvalidNode;
  Payload payload;
};

class Network {
 public:
  Network(EventLoop& loop, NetworkConfig config);

  /// Attach a node; returns its address.  The node must outlive the network
  /// or be detached first.
  NodeId attach(Node* node, NicConfig nic);

  /// Detach (recycle) a node: all in-flight and future messages to it are
  /// dropped.  The address is never reused.
  void detach(NodeId id);

  [[nodiscard]] bool is_attached(NodeId id) const;

  /// Queue a message for delivery; applies the full latency model (and the
  /// fault injector, when one is installed).
  void send(Message msg);

  /// Fan one sender's same-type messages out to many receivers.  Semantics
  /// match a loop of send() calls in item order (same stats, same fault
  /// gating, same shared-egress serialization); the per-lane walkers then
  /// amortize the whole span into one scheduled event per receiving lane.
  void send_batch(NodeId src, MessageType type, std::int64_t size_bytes,
                  std::vector<BatchItem> items);

  /// Route messages through the slot arena (no per-message heap
  /// allocation).  Delivery instants and outcomes are identical to the
  /// legacy engine — the pooled-vs-legacy differential tests pin it.
  void set_pooled_delivery(bool on) noexcept { pooled_ = on; }
  [[nodiscard]] bool pooled_delivery() const noexcept { return pooled_; }

  /// When off, every pooled arrival and delivery rides its own scheduled
  /// closure instead of the per-lane walker (differential oracle for the
  /// batched engine).  Only meaningful with pooled delivery.
  void set_batch_delivery(bool on) noexcept { batch_enabled_ = on; }
  [[nodiscard]] bool batch_delivery() const noexcept { return batch_enabled_; }

  /// Pre-size the message arena (large scenarios).
  void reserve_messages(std::size_t n) { slots_.reserve(n); }

  /// Install a fault injector consulted on every send (nullptr = fault-free;
  /// non-owning, must outlive the network or be cleared).
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Mirror every NetworkStats field onto registry metrics (kMetricNet*).
  /// The struct stays authoritative — `stats().conserved()` holds exactly as
  /// before — and the registry copies obey the same conservation law.
  /// Call before traffic starts; nullptr detaches.
  void set_registry(obs::Registry* registry);

  /// Record every resolved message into an event trace (off by default —
  /// costs memory proportional to traffic).
  void enable_trace() noexcept { trace_enabled_ = true; }
  [[nodiscard]] const std::vector<NetTraceEvent>& trace() const noexcept {
    return trace_;
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const NicConfig& nic(NodeId id) const;

  /// Current egress data-lane backlog of a node, in seconds (observable by
  /// the node itself, e.g. for load metrics).
  [[nodiscard]] double egress_backlog_s(NodeId id) const;

 private:
  struct Lane {
    double busy_until = 0.0;
  };
  struct Port {
    Node* node = nullptr;
    NicConfig nic;
    bool attached = false;
    Lane egress_data, egress_ctrl, ingress_data, ingress_ctrl;
  };
  /// One not-yet-finalized arrival waiting in an ingress lane's heap.
  struct Pending {
    double arr = 0.0;         // instant the message reaches the receiver NIC
    std::uint64_t order = 0;  // admission order: equal-arr ties keep send order
    std::uint32_t slot = 0;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      if (a.arr != b.arr) return a.arr > b.arr;
      return a.order > b.order;
    }
  };
  /// A finalized arrival awaiting its delivery instant.  Per lane, done
  /// times are strictly increasing (busy-chain order), so a FIFO suffices.
  struct Ready {
    double done = 0.0;
    std::uint32_t slot = 0;
  };
  struct IngressQueue {
    std::vector<Pending> pending;  // min-heap by (arr, order)
    std::vector<Ready> ready;      // FIFO; ready_head indexes the front
    std::uint32_t ready_head = 0;
    std::uint32_t gen = 0;   // invalidates superseded walker events
    double armed_at = -1.0;  // instant of the live walker event; -1 = none
  };

  Port& port_at(NodeId id);
  const Port& port_at(NodeId id) const;
  [[nodiscard]] double propagation_s(const Port& src, const Port& dst) const;

  /// Push a (fault-gate-passed) message through egress/propagation/ingress.
  /// Callers must have counted it into stats_.in_flight.
  void transmit(Message msg);
  void resolve(const Message& msg, NetTraceEvent::Outcome outcome);
  /// Trace with an explicit timestamp: lazily finalized walker drops record
  /// the instant the fate was sealed (the NIC arrival), not discovery time.
  void resolve_at(double t, const Message& msg, NetTraceEvent::Outcome outcome);

  /// Pre-gate shared by send()/send_batch(): sends counter, src/dst checks,
  /// fault injection.  Returns false when the message already resolved
  /// (dropped); on true the caller owns one in_flight unit.
  bool admit(Message& msg);

  // ---- pooled engine -------------------------------------------------------
  std::uint32_t acquire(Message&& msg);
  void release(std::uint32_t slot);
  /// Route an admitted arena message: per-lane walker when batching is on,
  /// otherwise one scheduled closure per arrival and per delivery.
  void dispatch_pooled(std::uint32_t slot);
  /// Egress + propagation for the arena message; drops or schedules arrival.
  void transmit_pooled(std::uint32_t slot);
  /// Ingress evaluation at the receiver NIC; drops or schedules delivery.
  void arrive_pooled(std::uint32_t slot);
  void deliver_pooled(std::uint32_t slot);
  /// Egress only; returns the NIC-arrival time, or a negative value when the
  /// message was tail-dropped at egress (already accounted + resolved).
  double egress_admit(Message& msg);

  // ---- per-lane delivery walkers (pooled + batched) ------------------------
  void ingress_enqueue(std::uint32_t slot, double arr);
  /// Seal the fate of one matured arrival with busy-as-of-arrival semantics:
  /// drop (detached / backlog) or commit a delivery instant.
  void finalize_arrival(std::uint32_t lane, const Pending& p, double now);
  /// Deliver matured ready messages, finalize matured arrivals, re-arm.
  /// Firings whose generation was superseded are no-ops.
  void walk_lane(std::uint32_t lane, std::uint32_t gen);
  /// Schedule the lane's next walker event if none fires early enough.
  void arm_lane(std::uint32_t lane);

  EventLoop& loop_;
  NetworkConfig config_;
  std::vector<Port> ports_;
  NetworkStats stats_;
  FaultInjector* fault_ = nullptr;
  bool trace_enabled_ = false;
  bool pooled_ = false;
  bool batch_enabled_ = true;
  std::uint16_t pod_walk_kind_ = 0;
  std::uint64_t arrival_order_ = 0;
  std::vector<NetTraceEvent> trace_;
  std::vector<Message> slots_;  // arena: in-flight pooled messages
  std::vector<std::uint32_t> free_slots_;
  std::vector<IngressQueue> ingress_;  // indexed 2 * port + priority
  // Null handles when no registry is set (all mirror ops no-op).
  struct {
    obs::Counter sends, delivered, dropped_egress, dropped_ingress,
        dropped_detached, dropped_faulted, duplicated, bytes_delivered;
    obs::Gauge in_flight;
  } metrics_;
};

}  // namespace shuffledef::cloudsim

// Replica application server (paper §III-C).
//
// Serves the protected web page to whitelisted clients only (the referring
// load balancer confirms each IP).  Holds a WebSocket to every client so
// that, when the coordination server orders a shuffle, the replica can push
// unsolicited redirect notifications (paper §VI-B: WebSocket multiplexing
// the HTTP(S) port, no client software needed).
//
// Resource model:
//   * network — the NIC's bandwidth/queueing (src/cloudsim/network.h) makes
//     junk floods crowd out page responses (network DDoS);
//   * CPU — a single-threaded service queue (the paper's prototype was an
//     unoptimized single-threaded Node.js server): each request occupies the
//     CPU for its service time; heavy requests occupy it much longer
//     (computational DDoS).  Requests beyond the queue limit are shed.
//
// Detection: a periodic tick compares the junk-packet arrival rate and the
// CPU backlog against thresholds and raises kAttackReport once per episode
// (paper §II-B assumes detection from congestion / traffic surges).
//
// At scale: the whitelist and WebSocket tables are keyed by interned IpId
// (no string hashing per request), queued replies capture 16 bytes (inside
// std::function's small buffer), shuffle redirects go out as one message
// batch, and building a large batch is sharded across util::ThreadPool
// under the deterministic-chunk contract (`shard_threads`).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cloudsim/node.h"
#include "obs/registry.h"

namespace shuffledef::cloudsim {

// Registry metric names of the replica-side QoS signal (the closed-loop
// control plane's input; see cloudsim/qos.h and ARCHITECTURE.md).
inline constexpr std::string_view kMetricReplicaLatencyEwmaUs =
    "replica.latency_ewma_us";
inline constexpr std::string_view kMetricReplicaQosReports =
    "replica.qos_reports";
inline constexpr std::string_view kMetricReplicaQueueDepthPeakUs =
    "replica.queue_depth_peak_us";

struct ReplicaConfig {
  std::int64_t page_bytes = 246 * 1024;  // the prototype's 246 KB page
  double cpu_per_request_s = 0.002;      // ~500 pages/s when healthy
  double cpu_queue_limit_s = 2.0;        // shed load beyond this backlog
  double detect_window_s = 0.5;
  double junk_rate_threshold = 200.0;    // packets/s
  double cpu_backlog_threshold_s = 1.0;  // computational-attack indicator
  /// While still under attack, re-send the attack report this long after
  /// the previous one, so a lost report (or a lost/failed shuffle round)
  /// cannot silence the defense forever.  0 = report once per episode.
  double report_renew_s = 2.0;
  /// Threads for building large shuffle-redirect batches (deterministic
  /// chunks: the result is bit-identical at every value).  1 = serial.
  int shard_threads = 1;

  // ---- closed-loop QoS signal (cloudsim/qos.h) ------------------------------
  /// Sample-and-report cadence of the QoS tick (0 = QoS reporting off, the
  /// legacy world: no extra events, no extra messages).  Each tick sends a
  /// kQosReport{latency EWMA, queue depth} to the coordinator.
  double qos_report_interval_s = 0.0;
  /// EWMA weight on each completed request's service latency.
  double qos_latency_alpha = 0.3;
  /// Sink for the replica.* metric family (nullptr = uninstrumented).
  obs::Registry* registry = nullptr;
};

struct ReplicaStats {
  std::uint64_t pages_served = 0;
  std::uint64_t rejected_not_whitelisted = 0;
  std::uint64_t shed_cpu_overload = 0;
  std::uint64_t junk_received = 0;
  std::uint64_t heavy_served = 0;
  std::uint64_t redirects_pushed = 0;
  std::uint64_t attack_reports_sent = 0;     // incl. renewals
  std::uint64_t duplicate_shuffle_commands = 0;  // re-acked idempotently
};

class ReplicaServer final : public Node {
 public:
  ReplicaServer(World& world, std::string name, ReplicaConfig config,
                NodeId coordinator = kInvalidNode);

  void set_coordinator(NodeId coordinator) { coordinator_ = coordinator; }

  void on_start() override;
  void on_message(const Message& msg) override;

  /// Clients currently whitelisted here, as (ip, client node) pairs — read
  /// by the coordination server when it builds a shuffle plan.
  [[nodiscard]] std::vector<std::pair<IpId, NodeId>> connected_clients() const;

  /// Force the detection path to fire now (used by the prototype-latency
  /// experiment, which triggers a *simulated* attack exactly like the
  /// paper's Figure 12 measurement).
  void simulate_attack_detected();

  /// Instance failure (fault injection): the server dies on the spot — no
  /// redirects pushed, no decommission ack, detection stops.  The caller
  /// detaches the NIC; clients recover via heartbeat rejoin and the
  /// coordinator via its command watchdog.
  void crash();

  [[nodiscard]] const ReplicaStats& stats() const { return stats_; }
  [[nodiscard]] bool decommissioned() const { return decommissioned_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] double cpu_backlog_s() const;

  /// The QoS signal pair as the next kQosReport would carry it: EWMA of
  /// request service latency (0 until the first request) and the current
  /// queue depth (CPU backlog + egress backlog), in seconds.
  [[nodiscard]] double latency_ewma_s() const { return latency_ewma_s_; }
  [[nodiscard]] double queue_depth_s() const;

 private:
  void detection_tick();
  void qos_tick();
  void send_attack_report(double junk_rate);
  /// Queue a kHttpResponse{200} reply behind the CPU; the deferred closure
  /// captures {this, dst, bytes} — 16 bytes, no heap allocation.
  void serve(NodeId reply_to, double cpu_seconds, std::int32_t reply_bytes);
  [[nodiscard]] double world_now() const;

  ReplicaConfig config_;
  NodeId coordinator_;
  std::unordered_map<IpId, NodeId> whitelist_;  // ip -> client node
  std::unordered_map<IpId, NodeId> websockets_;
  double cpu_busy_until_ = 0.0;
  std::uint64_t junk_in_window_ = 0;
  bool attack_reported_ = false;
  double last_report_at_ = 0.0;
  bool decommissioned_ = false;
  bool crashed_ = false;
  double latency_ewma_s_ = 0.0;  // updated per admitted request (event loop)
  ReplicaStats stats_;
  // Null handles when config_.registry is null.
  obs::Gauge latency_ewma_us_;
  obs::Gauge queue_depth_peak_us_;
  obs::Counter qos_reports_;
};

}  // namespace shuffledef::cloudsim

#include "cloudsim/event_loop.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace shuffledef::cloudsim {

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  // NaN compares false against everything, so `t < now_` alone would let a
  // NaN (or +inf) time into the queue and corrupt the heap ordering.
  if (!std::isfinite(t)) {
    throw std::invalid_argument("EventLoop: non-finite event time");
  }
  if (t < now_) {
    throw std::invalid_argument("EventLoop: scheduling into the past");
  }
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void EventLoop::schedule_after(SimTime delay, std::function<void()> fn) {
  if (!std::isfinite(delay)) {
    throw std::invalid_argument("EventLoop: non-finite delay");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("EventLoop: negative delay");
  }
  schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::run_until(SimTime t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    if (processed_ >= budget_) return false;
    // Moving out of a priority_queue requires the const_cast idiom; the
    // element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    dispatched_.inc();
    ev.fn();
  }
  if (now_ < t_end) now_ = t_end;
  return true;
}

bool EventLoop::run() {
  while (!queue_.empty()) {
    if (processed_ >= budget_) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    dispatched_.inc();
    ev.fn();
  }
  return true;
}

}  // namespace shuffledef::cloudsim

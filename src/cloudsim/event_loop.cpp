#include "cloudsim/event_loop.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace shuffledef::cloudsim {

void EventLoop::validate_time(SimTime t) const {
  // NaN compares false against everything, so `t < now_` alone would let a
  // NaN (or +inf) time into the queue and corrupt the heap ordering.
  if (!std::isfinite(t)) {
    throw std::invalid_argument("EventLoop: non-finite event time");
  }
  if (t < now_) {
    throw std::invalid_argument("EventLoop: scheduling into the past");
  }
}

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  validate_time(t);
  queue_.push_back(Event{t, seq_++, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

void EventLoop::schedule_after(SimTime delay, std::function<void()> fn) {
  if (!std::isfinite(delay)) {
    throw std::invalid_argument("EventLoop: non-finite delay");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("EventLoop: negative delay");
  }
  schedule_at(now_ + delay, std::move(fn));
}

std::uint16_t EventLoop::register_pod_handler(PodHandler handler, void* ctx) {
  if (handler == nullptr) {
    throw std::invalid_argument("EventLoop: null POD handler");
  }
  pod_kinds_.push_back(PodKind{handler, ctx});
  return static_cast<std::uint16_t>(pod_kinds_.size() - 1);
}

void EventLoop::schedule_pod_at(SimTime t, std::uint16_t kind, std::uint32_t a,
                                std::uint32_t b) {
  validate_time(t);
  if (kind >= pod_kinds_.size()) {
    throw std::invalid_argument("EventLoop: unregistered POD kind");
  }
  push_pod(PodEvent{t, seq_++, a, b, kind});
}

void EventLoop::push_pod(const PodEvent& ev) {
  // 4-ary sift-up: parent of i is (i - 1) / 4.
  std::size_t i = pod_queue_.size();
  pod_queue_.push_back(ev);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!pod_before(pod_queue_[i], pod_queue_[parent])) break;
    std::swap(pod_queue_[i], pod_queue_[parent]);
    i = parent;
  }
}

EventLoop::Event EventLoop::pop_front() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

EventLoop::PodEvent EventLoop::pop_pod() {
  const PodEvent top = pod_queue_.front();
  const PodEvent last = pod_queue_.back();
  pod_queue_.pop_back();
  const std::size_t n = pod_queue_.size();
  if (n == 0) return top;
  // 4-ary sift-down of `last` from the root: children of i start at 4i + 1.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (pod_before(pod_queue_[c], pod_queue_[best])) best = c;
    }
    if (!pod_before(pod_queue_[best], last)) break;
    pod_queue_[i] = pod_queue_[best];
    i = best;
  }
  pod_queue_[i] = last;
  return top;
}

bool EventLoop::run_until(SimTime t_end) {
  while (true) {
    const bool has_fn = !queue_.empty() && queue_.front().time <= t_end;
    const bool has_pod = !pod_queue_.empty() && pod_queue_.front().time <= t_end;
    if (!has_fn && !has_pod) break;
    if (processed_ >= budget_) return false;
    ++processed_;
    dispatched_.inc();
    // Merge-pop: the earlier (time, seq) of the two heap fronts fires, so
    // interleaving matches a single combined queue exactly.
    const bool take_pod =
        has_pod &&
        (!has_fn || pod_queue_.front().time < queue_.front().time ||
         (pod_queue_.front().time == queue_.front().time &&
          pod_queue_.front().seq < queue_.front().seq));
    if (take_pod) {
      const PodEvent ev = pop_pod();
      now_ = ev.time;
      const PodKind& k = pod_kinds_[ev.kind];
      k.handler(k.ctx, ev.a, ev.b);
    } else {
      Event ev = pop_front();
      now_ = ev.time;
      ev.fn();
    }
  }
  if (now_ < t_end) now_ = t_end;
  return true;
}

bool EventLoop::run() {
  while (!empty()) {
    if (processed_ >= budget_) return false;
    ++processed_;
    dispatched_.inc();
    const bool has_fn = !queue_.empty();
    const bool take_pod =
        !pod_queue_.empty() &&
        (!has_fn || pod_queue_.front().time < queue_.front().time ||
         (pod_queue_.front().time == queue_.front().time &&
          pod_queue_.front().seq < queue_.front().seq));
    if (take_pod) {
      const PodEvent ev = pop_pod();
      now_ = ev.time;
      const PodKind& k = pod_kinds_[ev.kind];
      k.handler(k.ctx, ev.a, ev.b);
    } else {
      Event ev = pop_front();
      now_ = ev.time;
      ev.fn();
    }
  }
  return true;
}

}  // namespace shuffledef::cloudsim

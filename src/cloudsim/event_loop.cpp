#include "cloudsim/event_loop.h"

#include <stdexcept>
#include <utility>

namespace shuffledef::cloudsim {

void EventLoop::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("EventLoop: scheduling into the past");
  }
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void EventLoop::schedule_after(SimTime delay, std::function<void()> fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("EventLoop: negative delay");
  }
  schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::run_until(SimTime t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    if (processed_ >= budget_) return false;
    // Moving out of a priority_queue requires the const_cast idiom; the
    // element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  if (now_ < t_end) now_ = t_end;
  return true;
}

bool EventLoop::run() {
  while (!queue_.empty()) {
    if (processed_ >= budget_) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return true;
}

}  // namespace shuffledef::cloudsim

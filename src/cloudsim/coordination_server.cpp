#include "cloudsim/coordination_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/provisioning.h"
#include "obs/span.h"
#include "util/logging.h"

namespace shuffledef::cloudsim {

CoordinationServer::CoordinationServer(World& world, std::string name,
                                       CoordinatorConfig config)
    : Node(world, std::move(name)),
      config_(config),
      controller_(config.controller) {
  if (config_.provision_timeout_s <= 0 || config_.command_timeout_s <= 0 ||
      config_.retry_backoff_initial_s <= 0 ||
      config_.retry_backoff_cap_s < config_.retry_backoff_initial_s) {
    throw std::invalid_argument(
        "CoordinatorConfig: timeouts/backoff must be positive and "
        "cap >= initial");
  }
  if (config_.provision_max_retries < 0 || config_.command_max_retries < 0) {
    throw std::invalid_argument("CoordinatorConfig: negative retry limit");
  }
  if (config_.fixed_cadence_s < 0) {
    throw std::invalid_argument("CoordinatorConfig: negative fixed cadence");
  }
  if (config_.qos.enabled) {
    phase_machine_.emplace(config_.qos);  // validates config_.qos
  }
  if (auto* registry = config_.controller.registry; registry != nullptr) {
    metrics_.attack_reports = registry->counter(kMetricCoordAttackReports);
    metrics_.rounds_executed = registry->counter(kMetricCoordRoundsExecuted);
    metrics_.clients_migrated = registry->counter(kMetricCoordClientsMigrated);
    metrics_.replicas_recycled =
        registry->counter(kMetricCoordReplicasRecycled);
    metrics_.provision_retries =
        registry->counter(kMetricCoordProvisionRetries);
    metrics_.rounds_degraded = registry->counter(kMetricCoordRoundsDegraded);
    metrics_.rounds_aborted = registry->counter(kMetricCoordRoundsAborted);
    metrics_.command_retries = registry->counter(kMetricCoordCommandRetries);
    metrics_.replicas_presumed_crashed =
        registry->counter(kMetricCoordReplicasPresumedCrashed);
    metrics_.late_spares_banked =
        registry->counter(kMetricCoordLateSparesBanked);
    metrics_.shuffles_declined =
        registry->counter(kMetricCoordShufflesDeclined);
    metrics_.qos_reports = registry->counter(kMetricCoordQosReports);
    metrics_.phase_switches = registry->counter(kMetricCoordPhaseSwitches);
    metrics_.autoscale_provisioned =
        registry->counter(kMetricCoordAutoscaleProvisioned);
    metrics_.autoscale_released =
        registry->counter(kMetricCoordAutoscaleReleased);
    metrics_.phase = registry->gauge(kMetricCoordPhase);
    metrics_.overloaded_replicas =
        registry->gauge(kMetricCoordOverloadedReplicas);
    metrics_.remaps_inflight = registry->gauge(kMetricCoordRemapsInflight);
    metrics_.remaps_inflight_peak =
        registry->gauge(kMetricCoordRemapsInflightPeak);
  }
}

void CoordinationServer::on_start() {
  if (config_.fixed_cadence_s > 0) {
    loop().schedule_after(config_.fixed_cadence_s, [this] { cadence_tick(); });
  }
}

void CoordinationServer::cadence_tick() {
  // The paper's proactive model: every T seconds, every active replica
  // shuffles — no feedback consulted.  This is the baseline the closed loop
  // is benchmarked against (bench/abl_qos_feedback).
  for (const NodeId r : active_replicas_) attacked_.insert(r);
  if (!attacked_.empty()) schedule_round();
  loop().schedule_after(config_.fixed_cadence_s, [this] { cadence_tick(); });
}

void CoordinationServer::set_infrastructure(
    CloudProvider* provider, std::vector<LoadBalancer*> load_balancers) {
  if (provider == nullptr) {
    throw std::invalid_argument("CoordinationServer: null provider");
  }
  provider_ = provider;
  load_balancers_ = std::move(load_balancers);
  provider_->set_coordinator(id());
}

void CoordinationServer::register_replica(NodeId replica) {
  active_replicas_.insert(replica);
  for (auto* lb : load_balancers_) lb->add_replica(replica);
}

void CoordinationServer::add_hot_spare(NodeId replica) {
  hot_spares_.push_back(replica);
}

ReplicaServer* CoordinationServer::replica_ptr(NodeId id) {
  return dynamic_cast<ReplicaServer*>(world().node(id));
}

double CoordinationServer::backoff_s(int attempt) const {
  double delay = config_.retry_backoff_initial_s;
  for (int i = 1; i < attempt; ++i) {
    delay *= 2.0;
    if (delay >= config_.retry_backoff_cap_s) break;
  }
  return std::min(delay, config_.retry_backoff_cap_s);
}

void CoordinationServer::on_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::kAttackReport: {
      const auto& report = payload_as<AttackReportPayload>(msg);
      ++stats_.attack_reports;
      metrics_.attack_reports.inc();
      if (!active_replicas_.contains(report.replica)) break;  // stale
      attacked_.insert(report.replica);
      schedule_round();
      break;
    }
    case MessageType::kQosReport: {
      if (!phase_machine_.has_value()) break;  // loop disabled
      const auto& report = payload_as<QosReportPayload>(msg);
      ++stats_.qos_reports;
      metrics_.qos_reports.inc();
      if (!active_replicas_.contains(report.replica)) break;  // stale
      qos_table_[report.replica] =
          QosSample{report.latency_ewma_s, report.queue_depth_s, loop().now()};
      evaluate_qos();
      break;
    }
    case MessageType::kDecommission: {
      const auto& dec = payload_as<DecommissionPayload>(msg);
      pending_commands_.erase(dec.replica);  // command acknowledged
      note_remaps_inflight();
      qos_table_.erase(dec.replica);
      // Duplicate-safe: only the first ack for a replica recycles it.
      if (active_replicas_.erase(dec.replica) == 0) break;
      for (auto* lb : load_balancers_) lb->remove_replica(dec.replica);
      provider_->recycle(dec.replica);
      ++stats_.replicas_recycled;
      metrics_.replicas_recycled.inc();
      // A drained remap frees cap budget; anything the cap deferred can go.
      if (config_.qos.enabled && !attacked_.empty()) schedule_round();
      break;
    }
    default:
      break;
  }
}

void CoordinationServer::note_remaps_inflight() {
  const auto n = static_cast<std::int64_t>(pending_commands_.size());
  stats_.remaps_inflight_peak = std::max(stats_.remaps_inflight_peak, n);
  metrics_.remaps_inflight.set(n);
  metrics_.remaps_inflight_peak.max_with(n);
}

void CoordinationServer::evaluate_qos() {
  const double now = loop().now();
  // Forget silent replicas (crashed, or their control lane lossy): a dead
  // sample must not pin the overloaded set — or the recovery — forever.
  std::erase_if(qos_table_, [&](const auto& kv) {
    return !active_replicas_.contains(kv.first) ||
           now - kv.second.at > config_.qos.stale_after_s;
  });

  // Threshold each replica into the overloaded set (memec: per-server load
  // vs threshold).  Either signal suffices: latency EWMA catches the CPU
  // queue, queue depth catches a flooded NIC the CPU never notices.
  std::vector<NodeId> overloaded;
  for (const auto& [replica, sample] : qos_table_) {
    if (sample.latency_s > config_.qos.overload_latency_s ||
        sample.queue_s > config_.qos.overload_queue_s) {
      overloaded.push_back(replica);
    }
  }
  const auto total = static_cast<std::int32_t>(active_replicas_.size());
  metrics_.overloaded_replicas.set(
      static_cast<std::int64_t>(overloaded.size()));

  const auto switched = phase_machine_->update(
      now, static_cast<std::int32_t>(overloaded.size()), total);
  if (switched.has_value()) {
    ++stats_.phase_switches;
    metrics_.phase_switches.inc();
    metrics_.phase.set(*switched == QosPhase::kOverload ? 1 : 0);
    SDEF_LOG(Info) << name() << ": phase -> " << qos_phase_name(*switched)
                   << " (" << overloaded.size() << "/" << total
                   << " overloaded)";
    if (*switched == QosPhase::kNormal) release_spares();
  }
  if (phase_machine_->phase() == QosPhase::kOverload) {
    // The latency-feedback trigger: overloaded replicas shuffle.  Theorem-1
    // autoscaling keeps the spare pool sized while the overload lasts, so
    // rounds skip the boot delay.
    for (const NodeId r : overloaded) attacked_.insert(r);
    if (!attacked_.empty()) schedule_round();
    autoscale_up();
  }
}

void CoordinationServer::autoscale_up() {
  if (!config_.qos.autoscale || provider_ == nullptr) return;
  // Keep enough warm spares for the *next* shuffle round to skip the boot
  // delay entirely: Theorem 1 gives the replica count that keeps the bot
  // estimate identifiable at the observed attack intensity (the
  // controller's current M-hat), and that is exactly what the round will
  // consume.  The overall fleet (active + spares + boots in flight) stays
  // capped at max_autoscale_replicas.
  const auto headroom =
      static_cast<std::int64_t>(config_.qos.max_autoscale_replicas) -
      static_cast<std::int64_t>(active_replicas_.size());
  const auto want = std::min<std::int64_t>(
      core::min_replicas_for_estimation(controller_.bot_estimate()),
      headroom);
  const auto have = static_cast<std::int64_t>(hot_spares_.size()) +
                    autoscale_pending_;
  for (std::int64_t i = have; i < want; ++i) {
    ++autoscale_pending_;
    provider_->provision([this](NodeId fresh) {
      --autoscale_pending_;
      ++stats_.autoscale_provisioned;
      metrics_.autoscale_provisioned.inc();
      if (phase_machine_->phase() == QosPhase::kNormal &&
          static_cast<std::int64_t>(hot_spares_.size()) >=
              config_.qos.reserve_spares) {
        // Recovery beat the boot: release the straggler immediately
        // instead of parking capacity nobody will consume.
        provider_->recycle(fresh);
        ++stats_.replicas_recycled;
        metrics_.replicas_recycled.inc();
        ++stats_.autoscale_released;
        metrics_.autoscale_released.inc();
        return;
      }
      add_hot_spare(fresh);
      ++autoscale_spares_;
    });
  }
}

void CoordinationServer::release_spares() {
  // Latency recovered: scale the warm pool back down to the configured
  // reserve, but only ever release spares the autoscaler booted itself —
  // the world-start seed spares stay parked.  Counted into
  // replicas_recycled so the conservation invariant (coordinator recycles
  // == provider recycles) keeps holding.
  while (autoscale_spares_ > 0 &&
         static_cast<std::int64_t>(hot_spares_.size()) >
             config_.qos.reserve_spares) {
    const NodeId spare = hot_spares_.back();
    hot_spares_.pop_back();
    --autoscale_spares_;
    provider_->recycle(spare);
    ++stats_.replicas_recycled;
    metrics_.replicas_recycled.inc();
    ++stats_.autoscale_released;
    metrics_.autoscale_released.inc();
  }
}

void CoordinationServer::schedule_round() {
  if (round_pending_ || round_in_flight_) return;
  round_pending_ = true;
  loop().schedule_after(config_.aggregation_window_s,
                        [this] { execute_round(); });
}

void CoordinationServer::execute_round() {
  const obs::Span span(config_.controller.registry, "coord.execute_round");
  round_pending_ = false;
  if (attacked_.empty() || provider_ == nullptr) return;

  // Snapshot the attacked replicas.  Replicas that already have a shuffle
  // command in flight are not re-shuffled; their retry loop owns them until
  // the kDecommission ack (or force-recycle).
  std::vector<NodeId> attacked(attacked_.begin(), attacked_.end());
  attacked_.clear();
  std::vector<NodeId> still_active;
  for (const NodeId r : attacked) {
    if (!active_replicas_.contains(r)) continue;
    if (pending_commands_.contains(r)) continue;
    still_active.push_back(r);
  }
  attacked = std::move(still_active);

  // Concurrent-remap cap (memec `states.maximum`): this round may only
  // start as many remaps as the budget left by still-unacked commands.  The
  // overflow goes back into attacked_ for the next round.
  if (config_.qos.enabled && config_.qos.max_concurrent_remaps > 0) {
    const auto budget = std::max<std::int64_t>(
        0, config_.qos.max_concurrent_remaps -
               static_cast<std::int64_t>(pending_commands_.size()));
    if (static_cast<std::int64_t>(attacked.size()) > budget) {
      const auto deferred =
          static_cast<std::int64_t>(attacked.size()) - budget;
      for (std::size_t i = static_cast<std::size_t>(budget);
           i < attacked.size(); ++i) {
        attacked_.insert(attacked[i]);
      }
      attacked.resize(static_cast<std::size_t>(budget));
      stats_.remap_cap_deferred += deferred;
      SDEF_LOG(Info) << name() << ": remap cap defers " << deferred
                     << " replica(s) to a later round";
    }
  }
  if (attacked.empty()) {
    // Everything deferred: the deferred set re-arms once in-flight remaps
    // drain (the next kQosReport / attack report reschedules).
    return;
  }

  // The affected client pool, in deterministic replica order.
  std::vector<std::pair<IpId, NodeId>> pool;
  for (const NodeId r : attacked) {
    const auto clients = replica_ptr(r)->connected_clients();
    pool.insert(pool.end(), clients.begin(), clients.end());
  }

  // MLE observation: which of the previous round's replicas were attacked?
  std::optional<core::ShuffleObservation> obs;
  if (last_round_.has_value() && controller_.config().use_mle) {
    std::vector<bool> flags;
    flags.reserve(last_round_->replicas.size());
    const std::set<NodeId> attacked_set(attacked.begin(), attacked.end());
    for (const NodeId r : last_round_->replicas) {
      flags.push_back(attacked_set.contains(r));
    }
    obs = core::ShuffleObservation{core::AssignmentPlan(last_round_->sizes),
                                   std::move(flags)};
  }
  if (!seeded_estimate_) {
    seeded_estimate_ = true;
    controller_.set_bot_estimate(std::max<core::Count>(
        1, static_cast<core::Count>(std::llround(
               config_.initial_bot_fraction *
               static_cast<double>(pool.size())))));
  }

  auto decision =
      controller_.decide(static_cast<core::Count>(pool.size()), obs);
  if (!decision.execute) {
    // Cost-aware decline: the expected saving does not pay for the
    // migration.  This window's reports are dropped — replicas under
    // continued attack keep reporting, so the round re-arms on fresh
    // reports and executes once the economics change.
    ++stats_.shuffles_declined;
    metrics_.shuffles_declined.inc();
    SDEF_LOG(Info) << name() << ": shuffle declined — expected net save "
                   << decision.expected_net_save << " below threshold "
                   << config_.controller.min_expected_net_save;
    return;
  }

  round_in_flight_ = true;
  const auto replica_count =
      static_cast<std::int64_t>(decision.plan.replica_count());
  SDEF_LOG(Info) << name() << ": shuffle round " << stats_.rounds_executed + 1
                 << " — " << attacked.size() << " attacked, pool "
                 << pool.size() << ", M-hat " << decision.bot_estimate
                 << ", new replicas " << replica_count;

  auto round = std::make_shared<PendingRound>();
  round->attacked = std::move(attacked);
  round->pool = std::move(pool);
  round->decision = std::move(decision);
  round->target = replica_count;

  // Consume hot spares first; only the shortfall pays the boot delay.
  while (!hot_spares_.empty() &&
         static_cast<std::int64_t>(round->ready.size()) < round->target) {
    round->ready.push_back(hot_spares_.back());
    hot_spares_.pop_back();
  }
  // Spares are consumed newest-first, so autoscaler-booted ones go first;
  // clamp what recovery may later release to what is actually still parked.
  autoscale_spares_ = std::min(
      autoscale_spares_, static_cast<std::int64_t>(hot_spares_.size()));
  const std::int64_t shortfall =
      round->target - static_cast<std::int64_t>(round->ready.size());
  if (shortfall == 0) {
    finish_round(round);
    return;
  }
  round->attempt = 1;
  request_wave(round, shortfall);
  arm_provision_watchdog(round);
}

void CoordinationServer::request_wave(
    const std::shared_ptr<PendingRound>& round, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    provider_->provision([this, round](NodeId fresh) {
      if (round->deployed) {
        // Straggler from a presumed-lost wave: keep it warm for the next
        // round instead of throwing the boot away.
        add_hot_spare(fresh);
        ++stats_.late_spares_banked;
        metrics_.late_spares_banked.inc();
        return;
      }
      round->ready.push_back(fresh);
      if (static_cast<std::int64_t>(round->ready.size()) >= round->target) {
        finish_round(round);
      }
    });
  }
}

void CoordinationServer::arm_provision_watchdog(
    const std::shared_ptr<PendingRound>& round) {
  const int armed_attempt = round->attempt;
  loop().schedule_after(config_.provision_timeout_s, [this, round,
                                                      armed_attempt] {
    if (round->deployed || round->attempt != armed_attempt) return;
    const std::int64_t missing =
        round->target - static_cast<std::int64_t>(round->ready.size());
    if (round->attempt > config_.provision_max_retries) {
      // Out of retries: deploy degraded onto whatever booted.
      SDEF_LOG(Warn) << name() << ": provisioning gave up with "
                     << round->ready.size() << "/" << round->target
                     << " replicas";
      finish_round(round);
      return;
    }
    ++round->attempt;
    ++stats_.provision_retries;
    metrics_.provision_retries.inc();
    const double delay = backoff_s(round->attempt - 1);
    SDEF_LOG(Info) << name() << ": provisioning wave " << round->attempt
                   << " re-requests " << missing << " instances after "
                   << delay << "s backoff";
    loop().schedule_after(delay, [this, round, missing] {
      if (round->deployed) return;
      request_wave(round, missing);
      arm_provision_watchdog(round);
    });
  });
}

void CoordinationServer::finish_round(
    const std::shared_ptr<PendingRound>& round) {
  if (round->deployed) return;
  round->deployed = true;

  std::vector<NodeId> replicas = round->ready;
  if (static_cast<std::int64_t>(replicas.size()) > round->target) {
    // A retry wave over-delivered; bank the surplus as hot spares.
    while (static_cast<std::int64_t>(replicas.size()) > round->target) {
      add_hot_spare(replicas.back());
      replicas.pop_back();
      ++stats_.late_spares_banked;
      metrics_.late_spares_banked.inc();
    }
  }
  if (replicas.empty()) {
    // Nothing booted at all: put the reports back and try again later (the
    // aggregation window plus backoff paces the retry).
    ++stats_.rounds_aborted;
    metrics_.rounds_aborted.inc();
    SDEF_LOG(Warn) << name() << ": round aborted — no replicas available";
    for (const NodeId r : round->attacked) {
      if (active_replicas_.contains(r)) attacked_.insert(r);
    }
    round_in_flight_ = false;
    if (!attacked_.empty()) schedule_round();
    return;
  }
  if (static_cast<std::int64_t>(replicas.size()) < round->target) {
    ++stats_.rounds_degraded;
    metrics_.rounds_degraded.inc();
  }
  deploy_shuffle(std::move(round->attacked), std::move(round->pool),
                 std::move(round->decision), replicas);
}

void CoordinationServer::deploy_shuffle(
    std::vector<NodeId> attacked, std::vector<std::pair<IpId, NodeId>> pool,
    core::RoundDecision decision, const std::vector<NodeId>& new_replicas) {
  // Uniformly random client-to-bucket mapping: the controller fixed only
  // the bucket sizes (paper §III-D: the coordination server "does not
  // control the specific assignments of individual clients").
  rng().shuffle(pool);

  // Where does each client go?  The plan's buckets map 1:1 onto the new
  // replicas; when provisioning came up short (degraded round) the surplus
  // buckets' clients are folded round-robin onto the replicas that exist.
  std::vector<NodeId> target_of(pool.size(), kInvalidNode);
  std::vector<core::Count> actual_sizes(new_replicas.size(), 0);
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < new_replicas.size(); ++b) {
    const auto size = static_cast<std::size_t>(decision.plan[b]);
    for (std::size_t k = 0; k < size && cursor < pool.size(); ++k, ++cursor) {
      target_of[cursor] = new_replicas[b];
      ++actual_sizes[b];
    }
  }
  for (std::size_t i = cursor; i < pool.size(); ++i) {
    target_of[i] = new_replicas[i % new_replicas.size()];
    ++actual_sizes[i % new_replicas.size()];
  }

  // Pre-whitelist every client on its new replica and re-point sticky
  // records, then order each attacked replica to push its redirects.  The
  // whitelist entries for one target travel together as a single
  // kWhitelistBatch — one message per new replica instead of one per client.
  std::map<NodeId, ShuffleCommandPayload> commands;
  std::map<NodeId, WhitelistBatchPayload> whitelists;
  std::map<NodeId, NodeId> current_home;  // client node -> old replica
  for (const NodeId r : attacked) {
    for (const auto& [ip, client] : replica_ptr(r)->connected_clients()) {
      current_home[client] = r;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& [ip, client] = pool[i];
    const NodeId target = target_of[i];
    whitelists[target].entries.emplace_back(ip, client);
    for (auto* lb : load_balancers_) lb->update_binding(ip, target);
    commands[current_home[client]].client_to_replica.emplace_back(client,
                                                                  target);
    ++stats_.clients_migrated;
    metrics_.clients_migrated.inc();
  }
  for (auto& [target, batch] : whitelists) {
    const auto wire =
        kControlMessageBytes +
        kWhitelistEntryBytes * static_cast<std::int64_t>(batch.entries.size());
    send(target, MessageType::kWhitelistBatch, wire, std::move(batch));
  }
  for (const NodeId r : attacked) {
    pending_commands_[r] =
        PendingCommand{commands[r], 0, ++command_epoch_};
    send_shuffle_command(r);
    arm_command_watchdog(r, pending_commands_[r].epoch);
  }
  note_remaps_inflight();

  // The new replicas join the active set (and serve fresh arrivals too).
  for (const NodeId r : new_replicas) register_replica(r);

  last_round_ = LastRound{new_replicas, std::move(actual_sizes)};
  ++stats_.rounds_executed;
  metrics_.rounds_executed.inc();
  round_in_flight_ = false;
  // Reports that arrived while this round was deploying start the next one.
  if (!attacked_.empty()) schedule_round();
}

void CoordinationServer::send_shuffle_command(NodeId replica) {
  // Empty command still decommissions the replica.
  send(replica, MessageType::kShuffleCommand, kControlMessageBytes,
       pending_commands_.at(replica).payload);
}

void CoordinationServer::arm_command_watchdog(NodeId replica,
                                              std::uint64_t epoch) {
  const auto it = pending_commands_.find(replica);
  if (it == pending_commands_.end()) return;
  // Ack deadline doubles per resend, capped.
  const double deadline = std::min(
      config_.command_timeout_s * static_cast<double>(1 << it->second.resends),
      config_.command_timeout_s + config_.retry_backoff_cap_s);
  loop().schedule_after(deadline, [this, replica, epoch] {
    const auto itw = pending_commands_.find(replica);
    if (itw == pending_commands_.end() || itw->second.epoch != epoch) {
      return;  // acknowledged (or superseded) in the meantime
    }
    if (itw->second.resends >= config_.command_max_retries) {
      // No ack after every retry: the replica is presumed crashed.  Remove
      // it so fresh arrivals and heartbeat-rejoining clients only ever see
      // live replicas.
      SDEF_LOG(Warn) << name() << ": replica " << replica
                     << " never acked its shuffle command — force-recycling";
      pending_commands_.erase(itw);
      note_remaps_inflight();
      drop_replica(replica);
      ++stats_.replicas_presumed_crashed;
      metrics_.replicas_presumed_crashed.inc();
      return;
    }
    ++itw->second.resends;
    ++stats_.command_retries;
    metrics_.command_retries.inc();
    itw->second.epoch = ++command_epoch_;
    send_shuffle_command(replica);
    arm_command_watchdog(replica, itw->second.epoch);
  });
}

void CoordinationServer::drop_replica(NodeId replica) {
  qos_table_.erase(replica);
  if (active_replicas_.erase(replica) == 0) return;
  for (auto* lb : load_balancers_) lb->remove_replica(replica);
  provider_->recycle(replica);
  ++stats_.replicas_recycled;
  metrics_.replicas_recycled.inc();
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/coordination_server.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/logging.h"

namespace shuffledef::cloudsim {

CoordinationServer::CoordinationServer(World& world, std::string name,
                                       CoordinatorConfig config)
    : Node(world, std::move(name)),
      config_(config),
      controller_(config.controller) {}

void CoordinationServer::set_infrastructure(
    CloudProvider* provider, std::vector<LoadBalancer*> load_balancers) {
  if (provider == nullptr) {
    throw std::invalid_argument("CoordinationServer: null provider");
  }
  provider_ = provider;
  load_balancers_ = std::move(load_balancers);
  provider_->set_coordinator(id());
}

void CoordinationServer::register_replica(NodeId replica) {
  active_replicas_.insert(replica);
  for (auto* lb : load_balancers_) lb->add_replica(replica);
}

void CoordinationServer::add_hot_spare(NodeId replica) {
  hot_spares_.push_back(replica);
}

ReplicaServer* CoordinationServer::replica_ptr(NodeId id) {
  return dynamic_cast<ReplicaServer*>(world().node(id));
}

void CoordinationServer::on_message(const Message& msg) {
  switch (msg.type) {
    case MessageType::kAttackReport: {
      const auto& report =
          std::any_cast<const AttackReportPayload&>(msg.payload);
      ++stats_.attack_reports;
      if (!active_replicas_.contains(report.replica)) break;  // stale
      attacked_.insert(report.replica);
      schedule_round();
      break;
    }
    case MessageType::kDecommission: {
      const auto& dec =
          std::any_cast<const DecommissionPayload&>(msg.payload);
      active_replicas_.erase(dec.replica);
      for (auto* lb : load_balancers_) lb->remove_replica(dec.replica);
      provider_->recycle(dec.replica);
      ++stats_.replicas_recycled;
      break;
    }
    default:
      break;
  }
}

void CoordinationServer::schedule_round() {
  if (round_pending_ || round_in_flight_) return;
  round_pending_ = true;
  loop().schedule_after(config_.aggregation_window_s,
                        [this] { execute_round(); });
}

void CoordinationServer::execute_round() {
  round_pending_ = false;
  if (attacked_.empty() || provider_ == nullptr) return;

  // Snapshot the attacked replicas and the affected client pool.
  std::vector<NodeId> attacked(attacked_.begin(), attacked_.end());
  attacked_.clear();
  std::vector<std::pair<std::string, NodeId>> pool;
  std::vector<NodeId> still_active;
  for (const NodeId r : attacked) {
    if (!active_replicas_.contains(r)) continue;
    still_active.push_back(r);
    auto* replica = replica_ptr(r);
    const auto clients = replica->connected_clients();
    pool.insert(pool.end(), clients.begin(), clients.end());
  }
  attacked = std::move(still_active);
  if (attacked.empty()) return;

  // MLE observation: which of the previous round's replicas were attacked?
  std::optional<core::ShuffleObservation> obs;
  if (last_round_.has_value() && controller_.config().use_mle) {
    std::vector<bool> flags;
    flags.reserve(last_round_->replicas.size());
    const std::set<NodeId> attacked_set(attacked.begin(), attacked.end());
    for (const NodeId r : last_round_->replicas) {
      flags.push_back(attacked_set.contains(r));
    }
    obs = core::ShuffleObservation{core::AssignmentPlan(last_round_->sizes),
                                   std::move(flags)};
  }
  if (!seeded_estimate_) {
    seeded_estimate_ = true;
    controller_.set_bot_estimate(std::max<core::Count>(
        1, static_cast<core::Count>(std::llround(
               config_.initial_bot_fraction *
               static_cast<double>(pool.size())))));
  }

  const auto decision =
      controller_.decide(static_cast<core::Count>(pool.size()), obs);

  round_in_flight_ = true;
  const auto replica_count =
      static_cast<std::int64_t>(decision.plan.replica_count());
  SDEF_LOG(Info) << name() << ": shuffle round " << stats_.rounds_executed + 1
                 << " — " << attacked.size() << " attacked, pool "
                 << pool.size() << ", M-hat " << decision.bot_estimate
                 << ", new replicas " << replica_count;

  // Consume hot spares first; only the shortfall pays the boot delay.
  std::vector<NodeId> ready;
  while (!hot_spares_.empty() &&
         static_cast<std::int64_t>(ready.size()) < replica_count) {
    ready.push_back(hot_spares_.back());
    hot_spares_.pop_back();
  }
  const std::int64_t shortfall =
      replica_count - static_cast<std::int64_t>(ready.size());
  if (shortfall == 0) {
    deploy_shuffle(std::move(attacked), std::move(pool), std::move(decision),
                   ready);
    return;
  }
  provider_->provision_many(
      shortfall, [this, attacked = std::move(attacked),
                  pool = std::move(pool), decision = std::move(decision),
                  ready = std::move(ready)](std::vector<NodeId> fresh) mutable {
        ready.insert(ready.end(), fresh.begin(), fresh.end());
        deploy_shuffle(std::move(attacked), std::move(pool),
                       std::move(decision), ready);
      });
}

void CoordinationServer::deploy_shuffle(
    std::vector<NodeId> attacked,
    std::vector<std::pair<std::string, NodeId>> pool,
    core::RoundDecision decision, const std::vector<NodeId>& new_replicas) {
  // Uniformly random client-to-bucket mapping: the controller fixed only
  // the bucket sizes (paper §III-D: the coordination server "does not
  // control the specific assignments of individual clients").
  rng().shuffle(pool);

  // Where does each client go?
  std::vector<NodeId> target_of(pool.size(), kInvalidNode);
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < new_replicas.size(); ++b) {
    const auto size = static_cast<std::size_t>(decision.plan[b]);
    for (std::size_t k = 0; k < size && cursor < pool.size(); ++k, ++cursor) {
      target_of[cursor] = new_replicas[b];
    }
  }

  // Pre-whitelist every client on its new replica and re-point sticky
  // records, then order each attacked replica to push its redirects.
  std::map<NodeId, ShuffleCommandPayload> commands;
  std::map<NodeId, NodeId> current_home;  // client node -> old replica
  for (const NodeId r : attacked) {
    for (const auto& [ip, client] : replica_ptr(r)->connected_clients()) {
      current_home[client] = r;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto& [ip, client] = pool[i];
    const NodeId target = target_of[i];
    if (target == kInvalidNode) continue;  // plan narrower than pool (guarded)
    send(target, MessageType::kWhitelistAdd, kControlMessageBytes,
         WhitelistAddPayload{ip, client});
    for (auto* lb : load_balancers_) lb->update_binding(ip, target);
    commands[current_home[client]].client_to_replica.emplace_back(client,
                                                                  target);
    ++stats_.clients_migrated;
  }
  for (const NodeId r : attacked) {
    send(r, MessageType::kShuffleCommand, kControlMessageBytes,
         commands[r]);  // empty command still decommissions the replica
  }

  // The new replicas join the active set (and serve fresh arrivals too).
  for (const NodeId r : new_replicas) register_replica(r);

  last_round_ = LastRound{new_replicas,
                          std::vector<core::Count>(decision.plan.counts())};
  ++stats_.rounds_executed;
  round_in_flight_ = false;
  // Reports that arrived while this round was deploying start the next one.
  if (!attacked_.empty()) schedule_round();
}

}  // namespace shuffledef::cloudsim

// Closed-loop QoS control plane: per-replica latency signals and the
// coordinator's overload phase machine.
//
// The paper shuffles on a fixed cadence; a deployable defense reacts to
// *observed* service degradation (Zhou et al., arXiv:1903.10102; Shan &
// Kesidis, arXiv:1704.06794 judge policies by time-to-QoS-restoration).
// The loop closed here:
//
//   replica samples its service-latency EWMA + queue depth on a
//   deterministic event-loop tick -> kQosReport to the coordinator ->
//   the coordinator thresholds each replica into an overloaded set ->
//   QosPhaseMachine switches kNormal <-> kOverload against start/stop
//   fractions with a hysteresis dwell (the memec Coordinator::switchPhase
//   pattern: start threshold to enter, stop threshold to leave, a cap on
//   concurrently remapped servers) -> during kOverload the overloaded
//   replicas are shuffled (capped at `max_concurrent_remaps` in flight)
//   and the Theorem-1 provisioner pre-boots spare replicas sized from the
//   observed attack intensity; recovery releases them again.
//
// The phase machine is a pure object — time in, transitions out — so the
// control law is property-testable without a simulated world, and every
// transition is recorded for bit-identity checks across thread counts and
// replays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace shuffledef::cloudsim {

/// Coordinator operating phase (memec: "remap stopped" / "remap started").
enum class QosPhase : std::uint8_t { kNormal = 0, kOverload = 1 };

[[nodiscard]] const char* qos_phase_name(QosPhase phase) noexcept;

/// One recorded phase switch.  The trace of these is part of the
/// determinism contract: bit-identical across replays of a seed, across
/// shard_threads settings, and across planner thread counts.
struct QosPhaseTransition {
  double at = 0.0;            // simulated time of the switch
  QosPhase to = QosPhase::kNormal;
  std::int32_t overloaded = 0;  // overloaded replicas at the switch
  std::int32_t total = 0;       // active replicas at the switch
  bool operator==(const QosPhaseTransition&) const = default;
};

struct QosConfig {
  /// Master switch.  Off (default) leaves the world bit-identical to a
  /// pre-QoS build: no replica ticks, no reports, no phase machine.
  bool enabled = false;

  // ---- replica-side signal ---------------------------------------------------
  /// Sampling/report cadence of each replica's QoS tick (a deterministic
  /// event-loop timer, so replays stay bit-identical).
  double report_interval_s = 0.5;
  /// EWMA weight on each completed request's service latency (queueing +
  /// service, known at admission): new = alpha*sample + (1-alpha)*old.
  double latency_alpha = 0.3;

  // ---- per-replica overload predicate (coordinator side) ---------------------
  /// A replica is overloaded when its reported latency EWMA exceeds this...
  double overload_latency_s = 0.25;
  /// ...or its reported queue depth (CPU backlog + egress backlog) does.
  double overload_queue_s = 1.0;
  /// Reports older than this are forgotten (a silent replica — crashed or
  /// its control lane lossy — must not pin the overloaded set forever).
  double stale_after_s = 3.0;

  // ---- phase machine ---------------------------------------------------------
  /// kNormal -> kOverload when overloaded > start_fraction * total.
  double start_fraction = 0.4;
  /// kOverload -> kNormal when overloaded < stop_fraction * total.  Must be
  /// strictly below start_fraction (validate() rejects stop >= start).
  double stop_fraction = 0.1;
  /// Minimum dwell between consecutive switches: once a switch fires, the
  /// next one is suppressed for this long, whichever direction.  This is
  /// what keeps a noisy signal from flapping kNormal -> kOverload ->
  /// kNormal inside one window.
  double hysteresis_s = 2.0;

  // ---- actuation -------------------------------------------------------------
  /// Cap on replicas concurrently being remapped (snapshot taken, command
  /// unacked).  0 = unlimited (the legacy report-driven behaviour).  The
  /// memec coordinator's `states.maximum`.
  std::int32_t max_concurrent_remaps = 0;
  /// During kOverload, pre-boot hot spares so shuffle rounds skip the boot
  /// delay: the Theorem-1 provisioner sizes the warm-spare pool from the
  /// controller's current bot estimate (what the next round will consume).
  bool autoscale = true;
  /// Hard cap on the whole fleet (active + spares + boots in flight): the
  /// autoscaler never grows past it.
  std::int32_t max_autoscale_replicas = 16;
  /// Spares kept warm after recovery; the surplus is released (recycled).
  std::int32_t reserve_spares = 0;

  /// All violations at once (empty = valid), each prefixed for embedding in
  /// a composite config's report.
  [[nodiscard]] std::vector<std::string> violations(
      const std::string& prefix = {}) const;
  /// Throws std::invalid_argument listing every violation.
  void validate() const;
};

/// The pure control law: feed deterministic (time, overloaded, total)
/// samples, get phase switches out.  Exactly the memec switchPhase shape —
/// start threshold to enter the remapping phase, stop threshold to leave —
/// plus an explicit hysteresis dwell.
class QosPhaseMachine {
 public:
  explicit QosPhaseMachine(const QosConfig& config);

  /// Evaluate one sample.  `now` must be non-decreasing across calls.
  /// Returns the phase switched *to*, or nullopt when nothing changed.
  std::optional<QosPhase> update(double now, std::int32_t overloaded,
                                 std::int32_t total);

  [[nodiscard]] QosPhase phase() const noexcept { return phase_; }
  /// Time of the last switch (-infinity before the first).
  [[nodiscard]] double last_switch_at() const noexcept {
    return last_switch_at_;
  }
  [[nodiscard]] const std::vector<QosPhaseTransition>& transitions() const {
    return transitions_;
  }

 private:
  QosConfig config_;
  QosPhase phase_ = QosPhase::kNormal;
  double last_switch_at_ = 0.0;  // set to -inf in the constructor
  std::vector<QosPhaseTransition> transitions_;
};

}  // namespace shuffledef::cloudsim

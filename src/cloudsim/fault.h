// Deterministic fault injection for the simulated cloud.
//
// The defense is a *recovery* mechanism: replicas are instantiated, clients
// redirected, and sessions migrated while the network is actively hostile.
// This subsystem makes that hostility explicit and reproducible — every
// fault decision is drawn from a dedicated RNG substream forked off the
// scenario seed, so a given seed replays bit-identically and enabling
// instrumentation never perturbs the fault sequence.
//
// Fault classes:
//   * per-message probabilistic loss and duplication, separately tunable
//     for the data lane and the prioritized control lane (lost redirects
//     and shuffle commands are where shuffling defenses break in practice);
//   * link-flap windows — intervals during which a lane drops everything;
//   * replica-server crashes scheduled at absolute sim times (executed by
//     the Scenario, which picks the victim through this injector's RNG);
//   * cloud-provider instantiation faults: a delay factor on the boot
//     latency and a probability that a requested instance never comes up.
//
// The injector is passive: Network and CloudProvider consult it on each
// message / provision attempt; it never schedules events itself.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cloudsim/message.h"
#include "obs/registry.h"
#include "util/random.h"

namespace shuffledef::cloudsim {

// Registry metric names mirroring FaultStats.
inline constexpr std::string_view kMetricFaultDropsData = "faults.drops_data";
inline constexpr std::string_view kMetricFaultDropsCtrl = "faults.drops_ctrl";
inline constexpr std::string_view kMetricFaultDropsFlap = "faults.drops_flap";
inline constexpr std::string_view kMetricFaultDuplicated = "faults.duplicated";
inline constexpr std::string_view kMetricFaultCrashesExecuted =
    "faults.crashes_executed";
inline constexpr std::string_view kMetricFaultProvisionsFailed =
    "faults.provisions_failed";
inline constexpr std::string_view kMetricFaultProvisionsDelayed =
    "faults.provisions_delayed";

/// A window during which a lane drops every message (both directions).
/// `node == kInvalidNode` flaps the whole fabric.
struct LinkFlap {
  double start_s = 0.0;
  double duration_s = 0.0;
  NodeId node = kInvalidNode;   // restrict to messages touching this node
  bool affects_data = true;
  bool affects_control = true;
};

struct FaultConfig {
  // Per-message probabilistic faults, split by lane.
  double data_loss_prob = 0.0;
  double ctrl_loss_prob = 0.0;
  double data_dup_prob = 0.0;
  double ctrl_dup_prob = 0.0;
  /// Extra delay before a duplicated copy re-enters the sender's NIC.
  double dup_extra_delay_s = 0.005;

  /// Absolute sim times at which one live replica crashes (victim chosen
  /// deterministically by the Scenario through the injector's RNG).
  std::vector<double> replica_crash_times_s;

  /// Multiplier on CloudProvider boot delay (2.0 = instances come up twice
  /// as slowly; must be > 0).
  double provision_delay_factor = 1.0;
  /// Probability that a requested instance silently never boots.
  double provision_failure_prob = 0.0;

  std::vector<LinkFlap> link_flaps;

  /// Salt for the fault RNG substream (forked off the scenario seed).
  std::uint64_t rng_salt = 0xFA177;

  /// True when any knob deviates from the fault-free default.
  [[nodiscard]] bool active() const;

  /// All violations at once, each prefixed (e.g. "faults.") for embedding in
  /// a composite config's report.  FaultInjector's constructor throws
  /// std::invalid_argument listing every violation.
  [[nodiscard]] std::vector<std::string> violations(
      const std::string& prefix = {}) const;
};

struct FaultStats {
  std::uint64_t drops_data = 0;       // probabilistic loss, data lane
  std::uint64_t drops_ctrl = 0;       // probabilistic loss, control lane
  std::uint64_t drops_flap = 0;       // lost to a link-flap window
  std::uint64_t duplicated = 0;       // extra copies injected
  std::uint64_t crashes_executed = 0; // replica crashes carried out
  std::uint64_t provisions_failed = 0;
  std::uint64_t provisions_delayed = 0;  // attempts with delay factor != 1
};

enum class FaultAction : std::uint8_t { kDeliver, kDrop, kDuplicate };

class FaultInjector {
 public:
  FaultInjector(FaultConfig config, util::Rng rng);

  /// Fate of one message about to leave its sender's NIC.  `priority` is
  /// the network's lane classification (is_priority_type).  Duplicated
  /// messages deliver the original normally; the caller injects the copy.
  FaultAction on_send(const Message& msg, bool priority, double now);

  /// CloudProvider hooks.
  [[nodiscard]] double provision_delay(double base_delay_s);
  [[nodiscard]] bool provision_fails();

  /// Scenario hooks for scheduled crashes: deterministic victim pick.
  [[nodiscard]] std::int64_t pick_index(std::int64_t n);
  void note_crash() {
    ++stats_.crashes_executed;
    metrics_.crashes_executed.inc();
  }

  /// Mirror every FaultStats field onto registry metrics (kMetricFault*).
  /// The struct stays authoritative; instrumentation never consumes RNG
  /// draws, so the fault sequence is unchanged.  nullptr detaches.
  void set_registry(obs::Registry* registry);

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool in_flap(const Message& msg, bool priority,
                             double now) const;

  FaultConfig config_;
  util::Rng rng_;
  FaultStats stats_;
  // Null handles when no registry is set (all mirror ops no-op).
  struct {
    obs::Counter drops_data, drops_ctrl, drops_flap, duplicated,
        crashes_executed, provisions_failed, provisions_delayed;
  } metrics_;
};

}  // namespace shuffledef::cloudsim

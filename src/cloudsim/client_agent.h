// Browser-like client (the prototype's PlanetLab Firefox nodes).
//
// Join flow (architecture steps 1-6): resolve the service via DNS, contact
// the returned load balancer, follow its redirect to a replica, fetch the
// page, then keep a WebSocket open so the replica can push shuffle
// redirects.  On a kWsPush the client reloads the page from the new replica
// and re-opens the WebSocket — the measured "migration".
//
// Requests time out and retry (page responses are exactly what a flood
// starves), and after too many failures the client rejoins from DNS — the
// behaviour that lets benign-but-affected clients recover once they are
// shuffled away from attackers.
#pragma once

#include <string>
#include <vector>

#include "cloudsim/node.h"

namespace shuffledef::cloudsim {

struct ClientConfig {
  std::string service = "www.example.com";
  std::string ip;                  // unique client IP (identity)
  NodeId dns = kInvalidNode;
  double start_time_s = 0.0;
  double request_timeout_s = 4.0;
  int max_retries = 4;             // per request before rejoining via DNS
  /// Browsing workload: mean think time between page reloads once
  /// connected (exponential); 0 = load the page once and sit on the
  /// WebSocket (the prototype behaviour).
  double browse_think_s = 0.0;
  /// WebSocket keepalive interval; a missed pong means the replica died
  /// without pushing a redirect (instance failure), and the client falls
  /// back to rejoining through DNS — the pull-based migration path.
  /// 0 disables heartbeats.
  double heartbeat_s = 0.0;
};

struct MigrationRecord {
  double push_received_at = 0.0;
  double completed_at = 0.0;
  [[nodiscard]] double duration() const { return completed_at - push_received_at; }
};

struct PageLoadRecord {
  double requested_at = 0.0;
  double completed_at = 0.0;
  [[nodiscard]] double duration() const { return completed_at - requested_at; }
};

struct ClientAgentStats {
  std::vector<PageLoadRecord> page_loads;   // successful page loads
  std::vector<MigrationRecord> migrations;  // completed shuffle migrations
  std::vector<double> timeout_at;           // when each request timed out
  double first_page_at = -1.0;              // absolute completion time
  int timeouts = 0;
  int rejoins = 0;
  int heartbeat_failures = 0;  // dead replicas detected via missed pongs
};

class ClientAgent : public Node {
 public:
  ClientAgent(World& world, std::string name, ClientConfig config);

  void on_start() override;
  void on_message(const Message& msg) override;

  [[nodiscard]] const ClientAgentStats& stats() const { return stats_; }
  [[nodiscard]] NodeId current_replica() const { return replica_; }
  [[nodiscard]] bool connected() const { return phase_ == Phase::kConnected; }
  [[nodiscard]] const std::string& ip() const { return config_.ip; }
  [[nodiscard]] IpId ip_id() const { return ip_id_; }

 protected:
  enum class Phase {
    kIdle,
    kResolving,
    kContactingLb,
    kLoadingPage,
    kOpeningWs,
    kConnected,
  };

  /// Subclass hooks (the persistent bot reuses the whole join flow).
  virtual void on_connected() {}
  virtual void on_migrated(NodeId /*new_replica*/) {}

  void start_join();
  void request_page();
  void arm_timeout();
  [[nodiscard]] Phase phase() const { return phase_; }

  ClientConfig config_;
  ServiceId service_id_ = kInvalidService;  // interned config_.service
  IpId ip_id_ = kInvalidIp;                 // interned config_.ip
  NodeId lb_ = kInvalidNode;
  NodeId replica_ = kInvalidNode;

 private:
  void handle_timeout(std::uint64_t generation);
  void schedule_browse();
  void schedule_heartbeat();

  Phase phase_ = Phase::kIdle;
  std::uint64_t generation_ = 0;  // invalidates stale timeouts/replies
  int retries_ = 0;
  double page_requested_at_ = 0.0;
  bool migrating_ = false;
  double migration_started_at_ = 0.0;
  NodeId ws_replica_ = kInvalidNode;  // replica with an open WebSocket
  std::uint64_t ping_seq_ = 0;        // last ping sent
  std::uint64_t pong_seq_ = 0;        // last pong received
  std::uint64_t hb_epoch_ = 0;        // invalidates stale heartbeat chains
  ClientAgentStats stats_;
};

}  // namespace shuffledef::cloudsim

// The botnet: persistent bots, naive bots, and the botmaster (paper §II-B).
//
//   PersistentBot — runs the full client join flow (so it is whitelisted and
//     indistinguishable from a benign client), then attacks its assigned
//     replica with junk packets and/or computationally heavy requests.  It
//     follows WebSocket shuffle redirects exactly like a browser, and
//     reports every replica address it discovers to the botmaster.
//
//   Botmaster — aggregates the persistent bots' reconnaissance and
//     periodically commands the naive bots to flood the currently known
//     replica addresses (the "hit list").
//
//   NaiveBot — floods whatever addresses it was last told; it cannot follow
//     moving targets, so after one server replacement its packets pour into
//     detached NICs (the defense's evasion of hit-list attackers).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "cloudsim/client_agent.h"
#include "cloudsim/node.h"
#include "core/attacker_strategy.h"

namespace shuffledef::cloudsim {

struct PersistentBotConfig {
  ClientConfig client;             // join-flow parameters
  NodeId botmaster = kInvalidNode;
  double junk_rate_pps = 0.0;      // junk packets/s at the current replica
  double heavy_interval_s = 0.0;   // 0 = no computational attack
  double heavy_cpu_seconds = 0.2;  // CPU burned per heavy request

  /// Shared attacker policy (non-owning; one core::AttackerStrategy object
  /// serves the whole botnet, typically owned by the Scenario).  nullptr =
  /// the legacy unconditional flood: the bot attacks from the moment it
  /// connects, every round, and the world's event/draw sequence is exactly
  /// the pre-registry one.
  const core::AttackerStrategy* strategy = nullptr;
  /// Sim-time length of one strategy round (the cadence at which the bot
  /// re-evaluates decide_one).
  double strategy_round_s = 1.0;
  /// Replica-count hint handed to scanning strategies through
  /// StrategyContext::replicas (the coupon-collector's scan target set).
  core::Count strategy_replicas = 0;
  /// Per-bot behavior stream, forked from the scenario RNG chain
  /// (`rng().fork(salt).fork_small(bot_index)`), so bot decisions are
  /// order-independent and never perturb the world's shared stream.
  core::BotState strategy_state{};
};

class PersistentBot final : public ClientAgent {
 public:
  PersistentBot(World& world, std::string name, PersistentBotConfig config);

  [[nodiscard]] std::uint64_t junk_sent() const { return junk_sent_; }
  [[nodiscard]] std::uint64_t heavy_sent() const { return heavy_sent_; }
  /// Whether the strategy currently lets this bot emit attack traffic
  /// (always true under the legacy null strategy).
  [[nodiscard]] bool strategy_active() const { return active_; }

 protected:
  void on_connected() override;
  void on_migrated(NodeId new_replica) override;

 private:
  void report_target();
  void junk_tick();
  void heavy_tick();
  void strategy_tick();

  PersistentBotConfig bot_config_;
  core::BotState strategy_state_;
  core::Count strategy_round_ = 0;
  bool active_ = true;  // gated by the strategy; ticks keep their cadence
  bool attacking_ = false;
  std::uint64_t junk_sent_ = 0;
  std::uint64_t heavy_sent_ = 0;
};

struct NaiveBotConfig {
  double junk_rate_pps = 100.0;  // spread across the current hit list
};

class NaiveBot final : public Node {
 public:
  NaiveBot(World& world, std::string name, NaiveBotConfig config);

  void on_message(const Message& msg) override;

  [[nodiscard]] std::uint64_t junk_sent() const { return junk_sent_; }

 private:
  void flood_tick();

  NaiveBotConfig config_;
  std::vector<NodeId> targets_;
  std::size_t next_target_ = 0;
  bool ticking_ = false;
  std::uint64_t junk_sent_ = 0;
};

struct BotmasterConfig {
  double command_interval_s = 1.0;
};

class Botmaster final : public Node {
 public:
  Botmaster(World& world, std::string name, BotmasterConfig config);

  void add_naive_bot(NodeId bot) { naive_bots_.push_back(bot); }

  void on_start() override;
  void on_message(const Message& msg) override;

  [[nodiscard]] const std::set<NodeId>& hit_list() const { return hit_list_; }

 private:
  void command_tick();

  BotmasterConfig config_;
  std::vector<NodeId> naive_bots_;
  std::set<NodeId> hit_list_;
  bool hit_list_dirty_ = false;
};

}  // namespace shuffledef::cloudsim

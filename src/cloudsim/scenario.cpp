#include "cloudsim/scenario.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace shuffledef::cloudsim {

std::vector<std::string> ScenarioConfig::validate() const {
  std::vector<std::string> violations;
  if (domains < 1) violations.push_back("domains must be >= 1");
  if (initial_replicas < 1) {
    violations.push_back("initial_replicas must be >= 1");
  }
  if (hot_spares < 0) violations.push_back("hot_spares must be >= 0");
  if (boot_delay_s < 0.0) violations.push_back("boot_delay_s must be >= 0");
  if (clients < 0) violations.push_back("clients must be >= 0");
  if (persistent_bots < 0) {
    violations.push_back("persistent_bots must be >= 0");
  }
  if (naive_bots < 0) violations.push_back("naive_bots must be >= 0");
  if (client_latency_min_s < 0.0 ||
      client_latency_max_s < client_latency_min_s) {
    violations.push_back("client latency must satisfy 0 <= min <= max");
  }
  if (client_start_spread_s < 0.0) {
    violations.push_back("client_start_spread_s must be >= 0");
  }
  if (bot_start_spread_s < 0.0) {
    violations.push_back("bot_start_spread_s must be >= 0");
  }
  if (bot_start_offset_s < 0.0) {
    violations.push_back("bot_start_offset_s must be >= 0");
  }
  if (bot_junk_rate_pps < 0.0) {
    violations.push_back("bot_junk_rate_pps must be >= 0");
  }
  if (bot_heavy_interval_s < 0.0) {
    violations.push_back("bot_heavy_interval_s must be >= 0");
  }
  if (naive_junk_rate_pps < 0.0) {
    violations.push_back("naive_junk_rate_pps must be >= 0");
  }
  if (!bot_strategy.empty()) {
    const auto& names = core::strategy_names();
    if (std::find(names.begin(), names.end(), bot_strategy) == names.end()) {
      std::string known;
      for (const auto& n : names) {
        if (!known.empty()) known += "|";
        known += n;
      }
      violations.push_back("bot_strategy unknown strategy '" + bot_strategy +
                           "' (expected " + known + ")");
    }
    for (auto& v : bot_strategy_options.violations("bot_strategy_options.")) {
      violations.push_back(std::move(v));
    }
  }
  if (!(bot_strategy_round_s > 0.0)) {
    violations.push_back("bot_strategy_round_s must be > 0");
  }
  if (shard_threads < 1) violations.push_back("shard_threads must be >= 1");
  if (!(swarm_sweep_dt_s > 0.0)) {
    violations.push_back("swarm_sweep_dt_s must be > 0");
  }
  for (auto& v : coordinator.controller.violations("coordinator.controller.")) {
    violations.push_back(std::move(v));
  }
  if (qos.enabled) {
    for (auto& v : qos.violations("qos.")) {
      violations.push_back(std::move(v));
    }
  }
  for (auto& v : faults.violations("faults.")) {
    violations.push_back(std::move(v));
  }
  return violations;
}

Scenario::Scenario(ScenarioConfig config) {
  if (const auto violations = config.validate(); !violations.empty()) {
    std::string message = "ScenarioConfig: " +
                          std::to_string(violations.size()) + " violation(s)";
    for (const auto& v : violations) message += "; " + v;
    throw std::invalid_argument(message);
  }
  engine_ = config.client_engine;
  // Replica-side shuffle fan-out shards on the same knob as the swarm.
  config.replica.shard_threads = config.shard_threads;

  // One registry observes the whole world: owned by default, external when
  // the caller wants to scope several scenarios onto one sink.
  if (config.registry != nullptr) {
    registry_ = config.registry;
  } else {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry_ = owned_registry_.get();
  }
  config.coordinator.controller.registry = registry_;

  // Close the QoS loop: replicas sample/report, the coordinator decides.
  // Set on config.replica *before* the provider config is built below, so
  // autoscale-provisioned replicas report exactly like the initial ones.
  if (config.qos.enabled) {
    config.coordinator.qos = config.qos;
    config.replica.qos_report_interval_s = config.qos.report_interval_s;
    config.replica.qos_latency_alpha = config.qos.latency_alpha;
    config.replica.registry = registry_;
  }

  world_ = std::make_unique<World>(
      WorldConfig{.seed = config.seed, .network = config.network});
  world_->loop().set_registry(registry_);
  world_->network().set_registry(registry_);
  if (config.record_net_trace) world_->network().enable_trace();
  // The flat engine requires the pooled arena (its per-member start events
  // and the batched redirect fan-outs assume POD closures + slot storage).
  world_->network().set_pooled_delivery(config.pooled_delivery ||
                                        engine_ == ClientEngine::kFlat);
  world_->network().set_batch_delivery(config.batch_delivery);
  if (engine_ == ClientEngine::kFlat) {
    const auto population = static_cast<std::size_t>(
        config.clients + config.persistent_bots + config.naive_bots);
    world_->network().reserve_messages(population / 4 + 1024);
    world_->loop().reserve(population + 1024);
  }

  // Fault injection: the injector draws from its own substream (forked off
  // the scenario seed), so a given seed replays bit-identically and an
  // inert config leaves the world untouched.
  if (config.faults.active()) {
    fault_ = std::make_unique<FaultInjector>(
        config.faults, world_->rng().fork(config.faults.rng_salt));
    fault_->set_registry(registry_);
    world_->network().set_fault_injector(fault_.get());
    for (const double t : config.faults.replica_crash_times_s) {
      world_->loop().schedule_at(t, [this] { crash_one_replica(); });
    }
  }

  // Cloud provider, spreading replicas across all domains.
  CloudProviderConfig provider_config;
  provider_config.boot_delay_s = config.boot_delay_s;
  provider_config.replica_nic = config.replica_nic;
  provider_config.replica = config.replica;
  provider_config.domains.clear();
  for (std::int32_t d = 0; d < config.domains; ++d) {
    provider_config.domains.push_back(d);
  }
  provider_ = std::make_unique<CloudProvider>(*world_, provider_config);
  provider_->set_registry(registry_);
  if (fault_) provider_->set_fault_injector(fault_.get());

  // Control plane.
  dns_ = world_->spawn<DnsServer>(config.infra_nic, "dns");
  coordinator_ = world_->spawn<CoordinationServer>(config.infra_nic,
                                                   "coordinator",
                                                   config.coordinator);
  const std::int32_t lbs_per_domain =
      std::max<std::int32_t>(1, config.load_balancers_per_domain);
  for (std::int32_t d = 0; d < config.domains; ++d) {
    for (std::int32_t i = 0; i < lbs_per_domain; ++i) {
      NicConfig nic = config.lb_nic;
      nic.domain = d;
      auto* lb = world_->spawn<LoadBalancer>(
          nic, "lb-" + std::to_string(d) + "-" + std::to_string(i));
      lb->reserve_records(static_cast<std::size_t>(
          std::max<std::int32_t>(config.clients, 16)));
      load_balancers_.push_back(lb);
      dns_->register_load_balancer(config.service, lb->id());
    }
  }
  coordinator_->set_infrastructure(provider_.get(), load_balancers_);

  // Initial replicas (synchronously attached — the service pre-exists).
  for (std::int32_t r = 0; r < config.initial_replicas; ++r) {
    NicConfig nic = config.replica_nic;
    nic.domain = r % config.domains;
    auto* replica = world_->spawn<ReplicaServer>(
        nic, "replica-initial-" + std::to_string(r), config.replica,
        coordinator_->id());
    initial_replicas_.push_back(replica->id());
    coordinator_->register_replica(replica->id());
  }
  for (std::int32_t s = 0; s < config.hot_spares; ++s) {
    NicConfig nic = config.replica_nic;
    nic.domain = s % config.domains;
    auto* spare = world_->spawn<ReplicaServer>(
        nic, "replica-spare-" + std::to_string(s), config.replica,
        coordinator_->id());
    coordinator_->add_hot_spare(spare->id());
  }
  // The pre-existing fleet joins the provider's active ledger so recycling
  // an initial replica (or releasing a seed spare) balances its books.
  provider_->adopt(config.initial_replicas + config.hot_spares);

  build_population(config);
}

void Scenario::build_population(const ScenarioConfig& config) {
  // Botmaster first under the flat engine (swarm member ports must stay a
  // contiguous range, so no other node may attach between add_* calls);
  // after the clients under the per-object engine (the historical spawn
  // order, which fault-replay goldens pin via port ids).
  const bool flat = engine_ == ClientEngine::kFlat;
  const bool botnet = config.persistent_bots > 0 || config.naive_bots > 0;
  if (flat && botnet) {
    botmaster_ = world_->spawn<Botmaster>(config.infra_nic, "botmaster",
                                          BotmasterConfig{});
  }
  // One shared strategy object for the whole botnet; per-bot behavior
  // streams fork off the scenario seed chain (Rng::fork is const, so an
  // empty bot_strategy leaves the world's shared draw sequence — and thus
  // fault-replay traces — untouched).
  if (!config.bot_strategy.empty()) {
    bot_strategy_ =
        core::make_strategy(config.bot_strategy, config.bot_strategy_options);
  }
  constexpr std::uint64_t kBotBehaviorStreamSalt = 101;
  constexpr std::uint64_t kClientBehaviorStreamSalt = 202;
  const util::Rng behavior_root = world_->rng().fork(kBotBehaviorStreamSalt);

  if (flat) {
    SwarmConfig sc;
    sc.service = config.service;
    sc.dns = dns_->id();
    sc.request_timeout_s = config.client_request_timeout_s;
    sc.browse_think_s = config.client_browse_think_s;
    sc.heartbeat_s = config.client_heartbeat_s;
    sc.botmaster = botmaster_ != nullptr ? botmaster_->id() : kInvalidNode;
    sc.bot_junk_rate_pps = config.bot_junk_rate_pps;
    sc.bot_heavy_interval_s = config.bot_heavy_interval_s;
    sc.bot_heavy_cpu_seconds = config.bot_heavy_cpu_seconds;
    sc.strategy = bot_strategy_.get();
    sc.strategy_round_s = config.bot_strategy_round_s;
    sc.strategy_replicas = config.initial_replicas;
    sc.sweep_dt_s = config.swarm_sweep_dt_s;
    sc.shard_threads = config.shard_threads;
    sc.behavior_root = world_->rng().fork(kClientBehaviorStreamSalt);
    swarm_ = world_->spawn<ClientSwarm>(config.infra_nic, "swarm",
                                        std::move(sc));
  }

  // Benign clients: geo spread via per-client base latency.  Both engines
  // consume the identical world-rng draw sequence (latency, start) per
  // member, so the infrastructure's stream stays aligned across engines.
  auto& rng = world_->rng();
  for (std::int32_t c = 0; c < config.clients; ++c) {
    NicConfig nic = config.client_nic;
    nic.base_latency_s =
        config.client_latency_min_s +
        rng.uniform() * (config.client_latency_max_s - config.client_latency_min_s);
    const double start = rng.uniform() * config.client_start_spread_s;
    if (flat) {
      swarm_->add_client(nic, start);
      continue;
    }
    ClientConfig cc;
    cc.service = config.service;
    cc.ip = "10.0." + std::to_string(c / 250) + "." + std::to_string(c % 250);
    cc.dns = dns_->id();
    cc.start_time_s = start;
    cc.request_timeout_s = config.client_request_timeout_s;
    cc.browse_think_s = config.client_browse_think_s;
    cc.heartbeat_s = config.client_heartbeat_s;
    clients_.push_back(world_->spawn<ClientAgent>(
        nic, "client-" + std::to_string(c), cc));
  }

  // Botnet.
  if (!flat && botnet) {
    botmaster_ = world_->spawn<Botmaster>(config.infra_nic, "botmaster",
                                          BotmasterConfig{});
  }
  for (std::int32_t b = 0; b < config.persistent_bots; ++b) {
    NicConfig nic = config.client_nic;
    nic.base_latency_s =
        config.client_latency_min_s +
        rng.uniform() * (config.client_latency_max_s - config.client_latency_min_s);
    const double start =
        config.bot_start_offset_s + rng.uniform() * config.bot_start_spread_s;
    core::BotState state(
        behavior_root.fork_small(static_cast<std::uint64_t>(b)));
    if (flat) {
      swarm_->add_bot(nic, start, state);
      continue;
    }
    PersistentBotConfig pc;
    pc.client.service = config.service;
    pc.client.ip = "66.6." + std::to_string(b / 250) + "." + std::to_string(b % 250);
    pc.client.dns = dns_->id();
    pc.client.start_time_s = start;
    pc.botmaster = botmaster_ != nullptr ? botmaster_->id() : kInvalidNode;
    pc.junk_rate_pps = config.bot_junk_rate_pps;
    pc.heavy_interval_s = config.bot_heavy_interval_s;
    pc.heavy_cpu_seconds = config.bot_heavy_cpu_seconds;
    pc.strategy = bot_strategy_.get();
    pc.strategy_round_s = config.bot_strategy_round_s;
    pc.strategy_replicas = config.initial_replicas;
    pc.strategy_state = state;
    persistent_bots_.push_back(world_->spawn<PersistentBot>(
        nic, "pbot-" + std::to_string(b), pc));
  }
  if (flat && swarm_ != nullptr) swarm_->finalize();
  for (std::int32_t b = 0; b < config.naive_bots; ++b) {
    NicConfig nic = config.client_nic;
    auto* bot = world_->spawn<NaiveBot>(
        nic, "nbot-" + std::to_string(b),
        NaiveBotConfig{.junk_rate_pps = config.naive_junk_rate_pps});
    naive_bots_.push_back(bot);
    if (botmaster_ != nullptr) botmaster_->add_naive_bot(bot->id());
  }
}

bool Scenario::run_until(SimTime t) { return world_->loop().run_until(t); }

void Scenario::crash_one_replica() {
  // Victim: a live (attached) member of the coordinator's active set, chosen
  // through the fault RNG so the pick replays deterministically.  The crash
  // is unannounced — no decommission, no redirects — recovery must come from
  // client heartbeats and the coordinator's command watchdog.
  std::vector<NodeId> candidates;
  for (const NodeId r : coordinator_->active_replicas()) {
    if (world_->network().is_attached(r)) candidates.push_back(r);
  }
  if (candidates.empty() || fault_ == nullptr) return;
  const NodeId victim = candidates[static_cast<std::size_t>(
      fault_->pick_index(static_cast<std::int64_t>(candidates.size())))];
  fault_->note_crash();
  replica(victim)->crash();
  world_->retire(victim);
}

ReplicaServer* Scenario::replica(NodeId id) {
  auto* r = dynamic_cast<ReplicaServer*>(world_->node(id));
  if (r == nullptr) throw std::invalid_argument("Scenario: not a replica id");
  return r;
}

std::int64_t Scenario::clients_connected() const {
  if (swarm_ != nullptr) return swarm_->clients_connected();
  std::int64_t n = 0;
  for (const auto* c : clients_) {
    if (c->connected()) ++n;
  }
  return n;
}

std::int64_t Scenario::replicas_hosting_bots() const {
  std::set<NodeId> bot_homes;
  if (swarm_ != nullptr) {
    const std::int32_t benign = swarm_->benign_members();
    for (std::int32_t k = 0; k < swarm_->bot_members(); ++k) {
      const NodeId r = swarm_->current_replica(benign + k);
      if (r != kInvalidNode && world_->network().is_attached(r)) {
        bot_homes.insert(r);
      }
    }
    return static_cast<std::int64_t>(bot_homes.size());
  }
  for (const auto* b : persistent_bots_) {
    if (b->current_replica() != kInvalidNode &&
        world_->network().is_attached(b->current_replica())) {
      bot_homes.insert(b->current_replica());
    }
  }
  return static_cast<std::int64_t>(bot_homes.size());
}

std::int64_t Scenario::benign_clients_isolated_from_bots() const {
  std::set<NodeId> bot_homes;
  std::int64_t n = 0;
  if (swarm_ != nullptr) {
    const std::int32_t benign = swarm_->benign_members();
    for (std::int32_t k = 0; k < swarm_->bot_members(); ++k) {
      bot_homes.insert(swarm_->current_replica(benign + k));
    }
    for (std::int32_t i = 0; i < benign; ++i) {
      const NodeId r = swarm_->current_replica(i);
      if (r != kInvalidNode && world_->network().is_attached(r) &&
          !bot_homes.contains(r)) {
        ++n;
      }
    }
    return n;
  }
  for (const auto* b : persistent_bots_) {
    bot_homes.insert(b->current_replica());
  }
  for (const auto* c : clients_) {
    if (c->current_replica() != kInvalidNode &&
        world_->network().is_attached(c->current_replica()) &&
        !bot_homes.contains(c->current_replica())) {
      ++n;
    }
  }
  return n;
}

}  // namespace shuffledef::cloudsim

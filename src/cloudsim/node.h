// Node base class and the World that owns everything.
//
// A World wires an EventLoop, a Network, and a deterministic RNG together
// and owns every simulated host.  Nodes are spawned with a NIC config,
// receive messages via on_message, and reply through send().  Retiring a
// node (server recycling) detaches its NIC: in-flight traffic to it is
// dropped, exactly like packets racing a terminated cloud instance.
//
// The World also owns the string interner: client IPs and service names are
// mapped to dense integer ids (IpId / ServiceId) once, at setup, so the
// per-message hot path never hashes a string.  A node may additionally
// attach extra ports (attach_port) — the flat ClientSwarm gives each of its
// million clients an own network address while staying one object.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/event_loop.h"
#include "cloudsim/message.h"
#include "cloudsim/network.h"
#include "util/random.h"

namespace shuffledef::cloudsim {

class World;

/// Dense string -> id mapping.  Ids are assigned in interning order and
/// never reused; anonymous ids (alloc) get an empty name and skip the map.
class StringInterner {
 public:
  std::int32_t intern(std::string_view s) {
    const auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::int32_t>(names_.size());
    names_.emplace_back(s);
    ids_.emplace(names_.back(), id);
    return id;
  }
  /// -1 when the string was never interned.
  [[nodiscard]] std::int32_t lookup(std::string_view s) const {
    const auto it = ids_.find(std::string(s));
    return it == ids_.end() ? -1 : it->second;
  }
  /// Allocate an id with no name (bulk client populations that never need
  /// their dotted-quad spelled out).
  std::int32_t alloc() {
    const auto id = static_cast<std::int32_t>(names_.size());
    names_.emplace_back();
    return id;
  }
  [[nodiscard]] const std::string& name(std::int32_t id) const {
    return names_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::unordered_map<std::string, std::int32_t> ids_;
  std::vector<std::string> names_;
};

class Node {
 public:
  Node(World& world, std::string name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deliver a message to this node (called by the Network).  `msg.dst` is
  /// the port it arrived on (== id() unless the node attached extra ports).
  virtual void on_message(const Message& msg) = 0;

  /// Called once, right after the node is attached.
  virtual void on_start() {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 protected:
  /// Send a typed message.
  void send(NodeId dst, MessageType type, std::int64_t size_bytes,
            Payload payload = {});
  /// Send from a specific owned port (nodes with extra ports).
  void send_from(NodeId src_port, NodeId dst, MessageType type,
                 std::int64_t size_bytes, Payload payload = {});

  [[nodiscard]] EventLoop& loop();
  [[nodiscard]] util::Rng& rng();
  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  friend class World;
  World& world_;
  std::string name_;
  NodeId id_ = kInvalidNode;
};

struct WorldConfig {
  std::uint64_t seed = 1;
  NetworkConfig network;
};

class World {
 public:
  explicit World(WorldConfig config = {});

  /// Construct a node of type T (forwarding `args` after the mandatory
  /// World& first parameter), attach it, fire on_start, return it.  The
  /// World owns the node for the simulation's lifetime.
  template <typename T, typename... Args>
  T* spawn(const NicConfig& nic, Args&&... args) {
    auto owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T* node = owned.get();
    node->id_ = attach_port(node, nic);
    nodes_.push_back(std::move(owned));
    node->on_start();
    return node;
  }

  /// Attach an additional port delivering to `node` (the flat ClientSwarm
  /// gives every client its own address this way).  Returns the new port id.
  NodeId attach_port(Node* node, const NicConfig& nic) {
    const NodeId id = network_.attach(node, nic);
    by_port_.push_back(node);
    return id;
  }

  /// Recycle a node: detach its NIC.  The object stays alive (ids and
  /// pointers remain valid) but receives no further traffic.
  void retire(NodeId id) { network_.detach(id); }

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }

  /// The node behind a port id (spawned nodes answer to their primary id;
  /// extra ports resolve to their owning node).
  [[nodiscard]] Node* node(NodeId id);

  // ---- string interning ----------------------------------------------------

  /// Intern a client IP string; repeated calls return the same id.
  IpId intern_ip(std::string_view ip) { return interner_.intern(ip); }
  /// Allocate an anonymous IP id (bulk populations; no string kept).
  IpId alloc_ip() { return interner_.alloc(); }
  /// Intern a service name (shares the id space with IPs).
  ServiceId intern_service(std::string_view service) {
    return interner_.intern(service);
  }
  /// The interned string ("" for anonymous ids).
  [[nodiscard]] const std::string& interned_name(std::int32_t id) const {
    return interner_.name(id);
  }

  // ---- IP ownership --------------------------------------------------------
  // The routing substrate knows which host an IP belongs to, so replies to a
  // *claimed* source IP reach its real owner — this is what makes redirection
  // a two-way handshake that spoofed senders cannot complete (paper §VII).

  void register_ip(IpId ip, NodeId owner) {
    if (ip < 0) return;
    if (static_cast<std::size_t>(ip) >= ip_owners_.size()) {
      ip_owners_.resize(static_cast<std::size_t>(ip) + 1, kInvalidNode);
    }
    ip_owners_[static_cast<std::size_t>(ip)] = owner;
  }
  void register_ip(const std::string& ip, NodeId owner) {
    register_ip(intern_ip(ip), owner);
  }
  /// kInvalidNode when the IP is unknown (unroutable / never registered).
  [[nodiscard]] NodeId ip_owner(IpId ip) const {
    if (ip < 0 || static_cast<std::size_t>(ip) >= ip_owners_.size()) {
      return kInvalidNode;
    }
    return ip_owners_[static_cast<std::size_t>(ip)];
  }
  [[nodiscard]] NodeId ip_owner(const std::string& ip) const {
    const std::int32_t id = interner_.lookup(ip);
    return id < 0 ? kInvalidNode : ip_owner(id);
  }

 private:
  EventLoop loop_;
  Network network_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Node*> by_port_;  // port id -> owning node
  StringInterner interner_;
  std::vector<NodeId> ip_owners_;  // IpId -> owner port (kInvalidNode = none)
};

}  // namespace shuffledef::cloudsim

// Node base class and the World that owns everything.
//
// A World wires an EventLoop, a Network, and a deterministic RNG together
// and owns every simulated host.  Nodes are spawned with a NIC config,
// receive messages via on_message, and reply through send().  Retiring a
// node (server recycling) detaches its NIC: in-flight traffic to it is
// dropped, exactly like packets racing a terminated cloud instance.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloudsim/event_loop.h"
#include "cloudsim/message.h"
#include "cloudsim/network.h"
#include "util/random.h"

namespace shuffledef::cloudsim {

class World;

class Node {
 public:
  Node(World& world, std::string name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deliver a message to this node (called by the Network).
  virtual void on_message(const Message& msg) = 0;

  /// Called once, right after the node is attached.
  virtual void on_start() {}

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 protected:
  /// Send a typed message.
  void send(NodeId dst, MessageType type, std::int64_t size_bytes,
            std::any payload = {});

  [[nodiscard]] EventLoop& loop();
  [[nodiscard]] util::Rng& rng();
  [[nodiscard]] World& world() noexcept { return world_; }

 private:
  friend class World;
  World& world_;
  std::string name_;
  NodeId id_ = kInvalidNode;
};

struct WorldConfig {
  std::uint64_t seed = 1;
  NetworkConfig network;
};

class World {
 public:
  explicit World(WorldConfig config = {});

  /// Construct a node of type T (forwarding `args` after the mandatory
  /// World& first parameter), attach it, fire on_start, return it.  The
  /// World owns the node for the simulation's lifetime.
  template <typename T, typename... Args>
  T* spawn(const NicConfig& nic, Args&&... args) {
    auto owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T* node = owned.get();
    node->id_ = network_.attach(node, nic);
    nodes_.push_back(std::move(owned));
    node->on_start();
    return node;
  }

  /// Recycle a node: detach its NIC.  The object stays alive (ids and
  /// pointers remain valid) but receives no further traffic.
  void retire(NodeId id) { network_.detach(id); }

  [[nodiscard]] EventLoop& loop() noexcept { return loop_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] SimTime now() const noexcept { return loop_.now(); }

  [[nodiscard]] Node* node(NodeId id);

  /// IP ownership registry: the routing substrate knows which host an IP
  /// belongs to, so replies to a *claimed* source IP reach its real owner —
  /// this is what makes redirection a two-way handshake that spoofed
  /// senders cannot complete (paper §VII).
  void register_ip(const std::string& ip, NodeId owner) {
    ip_owners_[ip] = owner;
  }
  /// kInvalidNode when the IP is unknown (unroutable / never registered).
  [[nodiscard]] NodeId ip_owner(const std::string& ip) const {
    const auto it = ip_owners_.find(ip);
    return it == ip_owners_.end() ? kInvalidNode : it->second;
  }

 private:
  EventLoop loop_;
  Network network_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, NodeId> ip_owners_;
};

}  // namespace shuffledef::cloudsim

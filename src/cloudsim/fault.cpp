#include "cloudsim/fault.h"

#include <stdexcept>

namespace shuffledef::cloudsim {

bool FaultConfig::active() const {
  return data_loss_prob > 0.0 || ctrl_loss_prob > 0.0 ||
         data_dup_prob > 0.0 || ctrl_dup_prob > 0.0 ||
         !replica_crash_times_s.empty() || provision_delay_factor != 1.0 ||
         provision_failure_prob > 0.0 || !link_flaps.empty();
}

std::vector<std::string> FaultConfig::violations(
    const std::string& prefix) const {
  std::vector<std::string> out;
  auto check_prob = [&](double p, const char* what) {
    if (!(p >= 0.0) || p > 1.0) {
      out.push_back(prefix + what + " must be a probability in [0, 1]");
    }
  };
  check_prob(data_loss_prob, "data_loss_prob");
  check_prob(ctrl_loss_prob, "ctrl_loss_prob");
  check_prob(data_dup_prob, "data_dup_prob");
  check_prob(ctrl_dup_prob, "ctrl_dup_prob");
  check_prob(provision_failure_prob, "provision_failure_prob");
  if (!(provision_delay_factor > 0.0)) {
    out.push_back(prefix + "provision_delay_factor must be > 0");
  }
  if (dup_extra_delay_s < 0.0) {
    out.push_back(prefix + "dup_extra_delay_s must be >= 0");
  }
  for (const auto& flap : link_flaps) {
    if (flap.start_s < 0.0 || flap.duration_s < 0.0) {
      out.push_back(prefix + "link-flap windows must be non-negative");
      break;
    }
  }
  return out;
}

FaultInjector::FaultInjector(FaultConfig config, util::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  if (const auto violations = config_.violations(); !violations.empty()) {
    std::string message = "FaultConfig: " + std::to_string(violations.size()) +
                          " violation(s)";
    for (const auto& v : violations) message += "; " + v;
    throw std::invalid_argument(message);
  }
}

void FaultInjector::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    metrics_ = {};
    return;
  }
  metrics_.drops_data = registry->counter(kMetricFaultDropsData);
  metrics_.drops_ctrl = registry->counter(kMetricFaultDropsCtrl);
  metrics_.drops_flap = registry->counter(kMetricFaultDropsFlap);
  metrics_.duplicated = registry->counter(kMetricFaultDuplicated);
  metrics_.crashes_executed = registry->counter(kMetricFaultCrashesExecuted);
  metrics_.provisions_failed = registry->counter(kMetricFaultProvisionsFailed);
  metrics_.provisions_delayed =
      registry->counter(kMetricFaultProvisionsDelayed);
}

bool FaultInjector::in_flap(const Message& msg, bool priority,
                            double now) const {
  for (const auto& flap : config_.link_flaps) {
    if (now < flap.start_s || now >= flap.start_s + flap.duration_s) continue;
    if (priority ? !flap.affects_control : !flap.affects_data) continue;
    if (flap.node != kInvalidNode && flap.node != msg.src &&
        flap.node != msg.dst) {
      continue;
    }
    return true;
  }
  return false;
}

FaultAction FaultInjector::on_send(const Message& msg, bool priority,
                                   double now) {
  if (in_flap(msg, priority, now)) {
    ++stats_.drops_flap;
    metrics_.drops_flap.inc();
    return FaultAction::kDrop;
  }
  const double loss =
      priority ? config_.ctrl_loss_prob : config_.data_loss_prob;
  // Draw unconditionally (uniform(), not bernoulli(), which short-circuits
  // at p == 0) so the fault stream's alignment does not depend on which
  // probabilities happen to be zero: a config that only dups control
  // traffic consumes the same number of draws per message as one that also
  // drops data traffic.
  const bool drop = rng_.uniform() < loss;
  const double dup = priority ? config_.ctrl_dup_prob : config_.data_dup_prob;
  const bool duplicate = rng_.uniform() < dup;
  if (drop) {
    ++(priority ? stats_.drops_ctrl : stats_.drops_data);
    (priority ? metrics_.drops_ctrl : metrics_.drops_data).inc();
    return FaultAction::kDrop;
  }
  if (duplicate) {
    ++stats_.duplicated;
    metrics_.duplicated.inc();
    return FaultAction::kDuplicate;
  }
  return FaultAction::kDeliver;
}

double FaultInjector::provision_delay(double base_delay_s) {
  if (config_.provision_delay_factor != 1.0) {
    ++stats_.provisions_delayed;
    metrics_.provisions_delayed.inc();
  }
  return base_delay_s * config_.provision_delay_factor;
}

bool FaultInjector::provision_fails() {
  const bool fails = rng_.bernoulli(config_.provision_failure_prob);
  if (fails) {
    ++stats_.provisions_failed;
    metrics_.provisions_failed.inc();
  }
  return fails;
}

std::int64_t FaultInjector::pick_index(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("FaultInjector: pick from empty");
  return rng_.uniform_int(0, n - 1);
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/fault.h"

#include <stdexcept>

namespace shuffledef::cloudsim {

bool FaultConfig::active() const {
  return data_loss_prob > 0.0 || ctrl_loss_prob > 0.0 ||
         data_dup_prob > 0.0 || ctrl_dup_prob > 0.0 ||
         !replica_crash_times_s.empty() || provision_delay_factor != 1.0 ||
         provision_failure_prob > 0.0 || !link_flaps.empty();
}

FaultInjector::FaultInjector(FaultConfig config, util::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  auto check_prob = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("FaultConfig: ") + what +
                                  " must be a probability in [0, 1]");
    }
  };
  check_prob(config_.data_loss_prob, "data_loss_prob");
  check_prob(config_.ctrl_loss_prob, "ctrl_loss_prob");
  check_prob(config_.data_dup_prob, "data_dup_prob");
  check_prob(config_.ctrl_dup_prob, "ctrl_dup_prob");
  check_prob(config_.provision_failure_prob, "provision_failure_prob");
  if (config_.provision_delay_factor <= 0.0) {
    throw std::invalid_argument("FaultConfig: provision_delay_factor <= 0");
  }
  if (config_.dup_extra_delay_s < 0.0) {
    throw std::invalid_argument("FaultConfig: negative dup_extra_delay_s");
  }
  for (const auto& flap : config_.link_flaps) {
    if (flap.start_s < 0.0 || flap.duration_s < 0.0) {
      throw std::invalid_argument("FaultConfig: negative link-flap window");
    }
  }
}

bool FaultInjector::in_flap(const Message& msg, bool priority,
                            double now) const {
  for (const auto& flap : config_.link_flaps) {
    if (now < flap.start_s || now >= flap.start_s + flap.duration_s) continue;
    if (priority ? !flap.affects_control : !flap.affects_data) continue;
    if (flap.node != kInvalidNode && flap.node != msg.src &&
        flap.node != msg.dst) {
      continue;
    }
    return true;
  }
  return false;
}

FaultAction FaultInjector::on_send(const Message& msg, bool priority,
                                   double now) {
  if (in_flap(msg, priority, now)) {
    ++stats_.drops_flap;
    return FaultAction::kDrop;
  }
  const double loss =
      priority ? config_.ctrl_loss_prob : config_.data_loss_prob;
  // Draw unconditionally (uniform(), not bernoulli(), which short-circuits
  // at p == 0) so the fault stream's alignment does not depend on which
  // probabilities happen to be zero: a config that only dups control
  // traffic consumes the same number of draws per message as one that also
  // drops data traffic.
  const bool drop = rng_.uniform() < loss;
  const double dup = priority ? config_.ctrl_dup_prob : config_.data_dup_prob;
  const bool duplicate = rng_.uniform() < dup;
  if (drop) {
    ++(priority ? stats_.drops_ctrl : stats_.drops_data);
    return FaultAction::kDrop;
  }
  if (duplicate) {
    ++stats_.duplicated;
    return FaultAction::kDuplicate;
  }
  return FaultAction::kDeliver;
}

double FaultInjector::provision_delay(double base_delay_s) {
  if (config_.provision_delay_factor != 1.0) ++stats_.provisions_delayed;
  return base_delay_s * config_.provision_delay_factor;
}

bool FaultInjector::provision_fails() {
  const bool fails = rng_.bernoulli(config_.provision_failure_prob);
  if (fails) ++stats_.provisions_failed;
  return fails;
}

std::int64_t FaultInjector::pick_index(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("FaultInjector: pick from empty");
  return rng_.uniform_int(0, n - 1);
}

}  // namespace shuffledef::cloudsim

#include "cloudsim/load_balancer.h"

#include <algorithm>

#include "util/logging.h"

namespace shuffledef::cloudsim {

LoadBalancer::LoadBalancer(World& world, std::string name, double record_ttl_s)
    : Node(world, std::move(name)), record_ttl_s_(record_ttl_s) {}

void LoadBalancer::add_replica(NodeId replica) {
  if (std::find(replicas_.begin(), replicas_.end(), replica) ==
      replicas_.end()) {
    replicas_.push_back(replica);
  }
}

void LoadBalancer::remove_replica(NodeId replica) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), replica),
                  replicas_.end());
  if (next_ >= replicas_.size()) next_ = 0;
}

void LoadBalancer::update_binding(IpId client_ip, NodeId replica) {
  records_[client_ip] = {replica, loop().now() + record_ttl_s_};
}

NodeId LoadBalancer::pick_replica() {
  // Skip replicas that have been recycled since they were registered.
  for (std::size_t tried = 0; tried < replicas_.size(); ++tried) {
    const NodeId candidate = replicas_[next_ % replicas_.size()];
    next_ = (next_ + 1) % replicas_.size();
    if (world().network().is_attached(candidate)) return candidate;
  }
  return kInvalidNode;
}

void LoadBalancer::on_message(const Message& msg) {
  if (msg.type != MessageType::kClientHello) return;
  const auto& hello = payload_as<ClientHelloPayload>(msg);

  // Two-way handshake: the redirect is routed to the *owner* of the claimed
  // source IP, never back to the raw sender.  A spoofer learns nothing, and
  // an unroutable IP is dropped on the spot (paper §VII: redirection stops
  // junk with spoofed sources from ever reaching the replicas).
  const NodeId claimant = world().ip_owner(hello.client_ip);
  if (claimant == kInvalidNode) {
    ++stats_.rejected_spoofed;
    return;
  }

  NodeId target = kInvalidNode;
  if (auto it = records_.find(hello.client_ip); it != records_.end()) {
    if (it->second.expires >= loop().now() &&
        world().network().is_attached(it->second.replica)) {
      target = it->second.replica;
      ++stats_.sticky_hits;
    } else {
      records_.erase(it);
    }
  }
  if (target == kInvalidNode) {
    if (replicas_.empty()) {
      ++stats_.rejected_no_replica;
      return;
    }
    target = pick_replica();
    if (target == kInvalidNode) {
      ++stats_.rejected_no_replica;
      return;
    }
    ++stats_.assignments;
    records_[hello.client_ip] = {target, loop().now() + record_ttl_s_};
  }

  // Inform the replica (whitelist) and redirect the client (HTTP 301-style)
  // — both keyed to the IP's owner, not the packet's sender.
  send(target, MessageType::kWhitelistAdd, kControlMessageBytes,
       WhitelistAddPayload{hello.client_ip, claimant});
  send(claimant, MessageType::kRedirect, kControlMessageBytes,
       RedirectPayload{target});
}

}  // namespace shuffledef::cloudsim

// Authoritative DNS for the protected service (architecture step 1-2).
//
// Resolves a service name to one of the registered load balancers,
// round-robin (RFC 1794 style), so clients are spread across cloud domains.
// The paper assumes DNS itself is well-provisioned and out of attack scope.
// Services are interned ids (World::intern_service); lookups never hash a
// string on the message path.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cloudsim/node.h"

namespace shuffledef::cloudsim {

class DnsServer final : public Node {
 public:
  DnsServer(World& world, std::string name);

  void register_load_balancer(const std::string& service, NodeId lb);
  void register_load_balancer(ServiceId service, NodeId lb);
  void unregister_load_balancer(const std::string& service, NodeId lb);
  void unregister_load_balancer(ServiceId service, NodeId lb);

  void on_message(const Message& msg) override;

  [[nodiscard]] std::uint64_t queries_served() const { return queries_; }

 private:
  struct ServiceRecord {
    std::vector<NodeId> load_balancers;
    std::size_t next = 0;  // round-robin cursor
  };
  std::unordered_map<ServiceId, ServiceRecord> records_;
  std::uint64_t queries_ = 0;
};

}  // namespace shuffledef::cloudsim

#include "cloudsim/qos.h"

#include <limits>
#include <stdexcept>

namespace shuffledef::cloudsim {

const char* qos_phase_name(QosPhase phase) noexcept {
  switch (phase) {
    case QosPhase::kNormal: return "normal";
    case QosPhase::kOverload: return "overload";
  }
  return "?";
}

std::vector<std::string> QosConfig::violations(const std::string& prefix) const {
  std::vector<std::string> out;
  if (!(report_interval_s > 0.0)) {
    out.push_back(prefix + "report_interval_s must be > 0");
  }
  if (!(latency_alpha > 0.0) || latency_alpha > 1.0) {
    out.push_back(prefix + "latency_alpha must be in (0, 1]");
  }
  if (!(overload_latency_s > 0.0)) {
    out.push_back(prefix + "overload_latency_s must be > 0");
  }
  if (!(overload_queue_s > 0.0)) {
    out.push_back(prefix + "overload_queue_s must be > 0");
  }
  if (!(stale_after_s > 0.0)) {
    out.push_back(prefix + "stale_after_s must be > 0");
  }
  if (start_fraction < 0.0 || start_fraction > 1.0) {
    out.push_back(prefix + "start_fraction must be in [0, 1]");
  }
  if (stop_fraction < 0.0) {
    out.push_back(prefix + "stop_fraction must be >= 0");
  }
  if (stop_fraction >= start_fraction) {
    // The memec start/stop pair only de-flaps when the exit threshold sits
    // strictly below the entry threshold.
    out.push_back(prefix +
                  "stop_fraction must be strictly below start_fraction");
  }
  if (hysteresis_s < 0.0) {
    out.push_back(prefix + "hysteresis_s must be >= 0");
  }
  if (max_concurrent_remaps < 0) {
    out.push_back(prefix + "max_concurrent_remaps must be >= 0");
  }
  if (max_autoscale_replicas < 1) {
    out.push_back(prefix + "max_autoscale_replicas must be >= 1");
  }
  if (reserve_spares < 0) {
    out.push_back(prefix + "reserve_spares must be >= 0");
  }
  return out;
}

void QosConfig::validate() const {
  const auto found = violations();
  if (found.empty()) return;
  std::string message =
      "QosConfig: " + std::to_string(found.size()) + " violation(s)";
  for (const auto& v : found) message += "; " + v;
  throw std::invalid_argument(message);
}

QosPhaseMachine::QosPhaseMachine(const QosConfig& config) : config_(config) {
  config_.validate();
  last_switch_at_ = -std::numeric_limits<double>::infinity();
}

std::optional<QosPhase> QosPhaseMachine::update(double now,
                                                std::int32_t overloaded,
                                                std::int32_t total) {
  if (now - last_switch_at_ < config_.hysteresis_s) return std::nullopt;
  const auto frac = [total](double f) {
    return f * static_cast<double>(total);
  };
  QosPhase next = phase_;
  if (phase_ == QosPhase::kNormal &&
      static_cast<double>(overloaded) > frac(config_.start_fraction)) {
    next = QosPhase::kOverload;
  } else if (phase_ == QosPhase::kOverload &&
             static_cast<double>(overloaded) < frac(config_.stop_fraction)) {
    next = QosPhase::kNormal;
  }
  if (next == phase_) return std::nullopt;
  phase_ = next;
  last_switch_at_ = now;
  transitions_.push_back(QosPhaseTransition{now, next, overloaded, total});
  return next;
}

}  // namespace shuffledef::cloudsim
